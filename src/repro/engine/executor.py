"""Cooperative query execution in work-unit budgets.

:class:`QueryExecution` wraps a planned operator tree and advances it with
``step(budget_units)``: the root iterator is pulled until at least that much
work has been charged (or the query finishes).  A single pull can overshoot
its budget -- e.g. one outer tuple of the paper's query triggers a whole
correlated index probe -- so the execution keeps a *work debt* and repays it
from subsequent budgets, preserving long-run conservation when a simulator
timeshares many queries.

Executions can also be made **work-preserving**: with a
``checkpoint_interval`` the execution snapshots its operator tree every so
many U's of work (an :class:`ExecutionCheckpoint`), and a fresh execution
of the same SQL can be :meth:`restored <QueryExecution.restore>` from such
a snapshot -- it re-emits nothing, re-charges nothing, and its work counter
is pre-credited with the preserved work.  A
:class:`~repro.engine.cancel.CancellationToken` threaded through the
account aborts the pull loop promptly (checked on every charge and on
every ``step``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.engine.errors import ExecutionError
from repro.engine.mode import DEFAULT_BATCH_SIZE, resolve_execution_mode
from repro.engine.operators.base import (
    Operator,
    PlanState,
    WorkAccount,
    configure_batch_size,
)
from repro.engine.progress import ProgressTracker
from repro.obs.runtime import Observability, resolve

_SENTINEL = object()


@dataclass(frozen=True)
class ExecutionCheckpoint:
    """A detached, resumable snapshot of one query execution.

    Plain data only: it stays valid after the execution (or the whole
    simulated backend) that produced it is gone.  ``plan_state`` is the
    operator tree's recursive state as produced by
    :meth:`~repro.engine.operators.base.Operator.checkpoint`.
    """

    sql: str
    work_done: float
    rows: tuple[tuple, ...]
    plan_state: PlanState = field(repr=False)
    #: Charged-but-unpaid work at snapshot time.  Batch mode charges in
    #: spikes and repays from later budgets; preserving the debt keeps a
    #: restored run time-conserving (it still owes the scheduler what the
    #: crashed attempt had banked).
    debt: float = 0.0

    @property
    def rows_emitted(self) -> int:
        """Output rows already produced at checkpoint time."""
        return len(self.rows)


class QueryExecution:
    """One query's cooperative execution state."""

    def __init__(
        self,
        root: Operator,
        account: WorkAccount,
        sql: str = "",
        checkpoint_interval: Optional[float] = None,
        obs: Optional[Observability] = None,
        execution_mode: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if checkpoint_interval is not None and not (
            math.isfinite(checkpoint_interval) and checkpoint_interval > 0
        ):
            raise ExecutionError("checkpoint_interval must be finite and > 0")
        #: ``"batch"`` or ``"row"`` (module default when not passed).
        self.execution_mode = resolve_execution_mode(execution_mode)
        self.batch_size = batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        if self.execution_mode == "batch":
            configure_batch_size(root, self.batch_size)
        self.root = root
        self.account = account
        self.sql = sql
        self.checkpoint_interval = checkpoint_interval
        self.progress = ProgressTracker(
            root,
            account,
            optimizer_estimate=root.est_cost,
            outstanding_debt=lambda: self._debt,
        )
        self.rows: list[tuple] = []
        #: Most recent checkpoint taken (by cadence or explicitly).
        self.last_checkpoint: Optional[ExecutionCheckpoint] = None
        #: The checkpoint this execution was restored from, if any.
        self.restored_from: Optional[ExecutionCheckpoint] = None
        #: Number of checkpoints successfully taken.
        self.checkpoints_taken = 0
        self._iterator: Optional[Iterator[tuple]] = None
        self._finished = False
        self._debt = 0.0
        self._next_checkpoint_at = (
            checkpoint_interval if checkpoint_interval is not None else math.inf
        )
        #: Paid-work cadence mark: keeps checkpoints flowing while a
        #: batch-mode execution is repaying banked debt (charged work --
        #: the other cadence -- stands still during repayment).
        self._next_paid_checkpoint_at = (
            checkpoint_interval if checkpoint_interval is not None else math.inf
        )
        self._obs = resolve(obs)
        self._pressure_seen = 0

    @property
    def finished(self) -> bool:
        """Whether the query has produced all of its rows."""
        return self._finished

    @property
    def work_done(self) -> float:
        """Total work charged so far, in U's."""
        return self.account.total

    @property
    def paid_work(self) -> float:
        """Work the scheduler has actually paid for, in U's.

        Charged work minus the banked overshoot debt.  In row mode the
        two are nearly equal; in batch mode this is the smooth,
        budget-conserving counter schedulers and speed monitors should
        read (charged work moves in batch-sized spikes).
        """
        return max(self.account.total - self._debt, 0.0)

    @property
    def cancel_token(self):
        """The cancellation token threaded through the work account."""
        return self.account.cancel_token

    @property
    def column_names(self) -> tuple[str, ...]:
        """Output column names."""
        return tuple(slot.name for slot in self.root.layout.slots)

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> Optional[ExecutionCheckpoint]:
        """Snapshot the execution now, or ``None`` if it cannot be.

        ``None`` means the plan has no cheap resumable state at this point
        (some operator in the hot path is non-checkpointable), or the
        query already finished.  Safe to call between any two ``step``
        calls -- the pipeline is suspended at a root-pull boundary.
        """
        if self._finished:
            return None
        plan_state = self.root.checkpoint()
        if plan_state is None:
            return None
        ckpt = ExecutionCheckpoint(
            sql=self.sql,
            work_done=self.account.total,
            rows=tuple(self.rows),
            plan_state=plan_state,
            debt=self._debt,
        )
        self.last_checkpoint = ckpt
        self.checkpoints_taken += 1
        self._next_paid_checkpoint_at = (
            self.paid_work + (self.checkpoint_interval or math.inf)
        )
        if self._obs is not None:
            # Engine executions have no simulation clock: virtual_time=None.
            self._obs.metrics.counter("executor.checkpoints").inc()
            self._obs.tracer.emit(
                "executor.checkpoint", None,
                work_done=ckpt.work_done, rows=ckpt.rows_emitted,
            )
        return ckpt

    def restore(self, ckpt: ExecutionCheckpoint) -> None:
        """Resume a *fresh* execution from *ckpt*.

        The execution must not have run yet: restore primes the operator
        tree, replays the already-produced rows into :attr:`rows`, and
        credits the account with the preserved work so conservation holds
        (``work_done`` continues from the checkpoint, not from zero).
        """
        if self._iterator is not None or self._finished or self.rows:
            raise ExecutionError("restore() requires a fresh execution")
        if ckpt.sql and self.sql and ckpt.sql != self.sql:
            raise ExecutionError(
                f"checkpoint is for a different query "
                f"({ckpt.sql!r} != {self.sql!r})"
            )
        self.root.restore(ckpt.plan_state)
        self.account.credit(ckpt.work_done)
        self._debt = ckpt.debt
        self.rows = list(ckpt.rows)
        self.restored_from = ckpt
        self.last_checkpoint = ckpt
        self.progress.note_restore(ckpt.work_done)
        if self._obs is not None:
            self._obs.metrics.counter("executor.restores").inc()
            self._obs.tracer.emit(
                "executor.restore", None,
                work_done=ckpt.work_done, rows=ckpt.rows_emitted,
            )
        if self.checkpoint_interval is not None:
            self._next_checkpoint_at = (
                self.account.total + self.checkpoint_interval
            )
            self._next_paid_checkpoint_at = (
                self.paid_work + self.checkpoint_interval
            )

    def _maybe_checkpoint(self) -> None:
        """Take a cadence checkpoint if the work counter crossed the mark."""
        if self.account.total < self._next_checkpoint_at:
            return
        self.checkpoint()
        # Advance even if the snapshot failed (non-checkpointable plan):
        # retrying every row would only add overhead, not a checkpoint.
        self._next_checkpoint_at = (
            self.account.total + (self.checkpoint_interval or math.inf)
        )

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self, budget: float) -> float:
        """Run until roughly *budget* more U's are consumed.

        Returns the budget consumed: exactly *budget* while running (debt
        smooths overshoot), possibly less on the step that finishes the
        query.

        Raises
        ------
        ExecutionError
            If called with a negative budget.
        QueryCancelled
            If the execution's cancellation token has fired.
        """
        if budget < 0:
            raise ExecutionError("budget must be >= 0")
        if self._finished:
            return 0.0
        if self.account.cancel_token is not None:
            # Charges also check the token; this catches zero-work pulls.
            self.account.cancel_token.raise_if_cancelled()
        if self._iterator is None:
            if self.execution_mode == "batch":
                self._iterator = self.root.batches(None)
            else:
                self._iterator = self.root.rows(None)

        if self._debt >= budget:
            # Still paying off a previous overshoot.  Refresh the stored
            # checkpoint on the paid-work cadence so a crash mid-repayment
            # does not fall back to a snapshot with the full spike's debt.
            self._debt -= budget
            if self.paid_work >= self._next_paid_checkpoint_at:
                self.checkpoint()
            return budget

        debt_start = self._debt
        effective = budget - debt_start
        start = self.account.total
        consumed_at_finish: Optional[float] = None
        # Inside the loop, none of this step's budget counts as paid yet:
        # keep the banked-debt view current so a cadence checkpoint taken
        # mid-spike records the full outstanding debt (a restore must not
        # forgive work the scheduler never paid for).
        if self.execution_mode == "batch":
            # Same loop, batch-granular: rows land in bulk and cadence
            # checkpoints are taken at batch boundaries.
            while self.account.total - start < effective:
                batch = next(self._iterator, _SENTINEL)
                if batch is _SENTINEL:
                    self._finished = True
                    self.progress.mark_finished()
                    consumed_at_finish = self.account.total - start
                    break
                # Columnar chunks materialize to row tuples exactly here --
                # the query output is the last pipeline breaker.
                tuples = getattr(batch, "tuples", None)
                self.rows.extend(tuples() if tuples is not None else batch)
                self._debt = debt_start + (self.account.total - start)
                self._maybe_checkpoint()
        else:
            while self.account.total - start < effective:
                row = next(self._iterator, _SENTINEL)
                if row is _SENTINEL:
                    self._finished = True
                    self.progress.mark_finished()
                    consumed_at_finish = self.account.total - start
                    break
                self.rows.append(row)
                self._debt = debt_start + (self.account.total - start)
                self._maybe_checkpoint()

        actual = self.account.total - start
        if self._obs is not None:
            self._obs.metrics.histogram("executor.step_work").observe(actual)
            pressure = self.progress.memory_pressure_events()
            if pressure > self._pressure_seen:
                self._obs.metrics.counter("executor.memory_pressure").inc(
                    pressure - self._pressure_seen
                )
                self._obs.tracer.emit(
                    "executor.memory_pressure", None,
                    events=pressure, work_done=self.account.total,
                )
                self._pressure_seen = pressure
            if self._finished:
                self._obs.metrics.counter("executor.finished").inc()
                self._obs.tracer.emit(
                    "executor.finish", None,
                    work_done=self.account.total, rows=len(self.rows),
                )
        if self._finished:
            # Pay down debt with the work actually performed this step.
            used = debt_start + (consumed_at_finish or actual)
            self._debt = 0.0
            return min(used, budget)
        # Ran past the budget: bank the overshoot as debt.
        self._debt = max(debt_start + actual - budget, 0.0)
        return budget

    def run_to_completion(self, chunk: float = 1000.0) -> list[tuple]:
        """Run the query to completion and return its rows."""
        while not self._finished:
            self.step(chunk)
        return self.rows

    def explain(self) -> str:
        """The annotated physical plan."""
        return self.root.explain()
