"""Exception hierarchy of the mini SQL engine."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine errors."""


class ParseError(EngineError):
    """Raised when SQL text cannot be tokenised or parsed.

    Carries the offending position so callers can point at the problem.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SqlTypeError(EngineError):
    """Raised on invalid type combinations in expressions or inserts."""


class CatalogError(EngineError):
    """Raised for unknown/duplicate tables, columns or indexes."""


class PlanError(EngineError):
    """Raised when a parsed statement cannot be planned."""


class ExecutionError(EngineError):
    """Raised for runtime failures during query execution."""
