"""Exception hierarchy of the mini SQL engine."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine errors."""


class ParseError(EngineError):
    """Raised when SQL text cannot be tokenised or parsed.

    Carries the offending position so callers can point at the problem.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SqlTypeError(EngineError):
    """Raised on invalid type combinations in expressions or inserts."""


class CatalogError(EngineError):
    """Raised for unknown/duplicate tables, columns or indexes."""


class PlanError(EngineError):
    """Raised when a parsed statement cannot be planned."""


class ExecutionError(EngineError):
    """Raised for runtime failures during query execution."""


class QueryCancelled(ExecutionError):
    """Raised when a cancellation token fires mid-execution.

    Cancellation is checked every time work is charged, so even a single
    long pull (e.g. one outer tuple triggering a whole correlated probe)
    stops promptly.  Carries the token's reason.
    """


class MemoryBudgetExceeded(ExecutionError):
    """Raised when a query exceeds its hard memory limit.

    The soft budget triggers graceful degradation first (external-merge
    sort, spilled join/aggregate partitions); this error is the end of
    that ladder -- an operator that cannot degrade, or degraded state
    that still grows past the hard limit.
    """
