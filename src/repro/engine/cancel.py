"""Cooperative query cancellation.

A :class:`CancellationToken` is shared between whoever wants a query gone
(the workload manager, a deadline enforcer, an interactive client) and the
execution that must honour it.  The executor checks the token at every
``step()`` and -- through :class:`~repro.engine.operators.base.WorkAccount`
-- every time work is charged, so cancellation lands promptly even inside
a single long pull (one outer tuple of the paper's query can trigger a
whole correlated index probe).

Cancellation raises :class:`~repro.engine.errors.QueryCancelled`, a normal
:class:`~repro.engine.errors.EngineError`: the simulator treats it like any
other runtime failure, so traces, retry policies and watchdogs compose
with it unchanged.
"""

from __future__ import annotations

from repro.engine.errors import QueryCancelled


class CancellationToken:
    """A latch that, once set, aborts the execution holding it.

    Tokens are one-way: once cancelled they stay cancelled.  ``reason``
    is carried into the :class:`QueryCancelled` error so traces show *why*
    the query died (deadline, user request, admission control, ...).
    """

    __slots__ = ("_cancelled", "_reason")

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = ""

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def reason(self) -> str:
        """Why the token was cancelled (empty while uncancelled)."""
        return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        """Fire the token.  Idempotent: the first reason wins."""
        if not self._cancelled:
            self._cancelled = True
            self._reason = reason

    def raise_if_cancelled(self) -> None:
        """Raise :class:`QueryCancelled` if the token has fired."""
        if self._cancelled:
            raise QueryCancelled(self._reason or "cancelled")
