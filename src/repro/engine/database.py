"""The user-facing database facade.

:class:`Database` ties the catalog, parser, planner and executor together:

>>> db = Database()
>>> db.execute("CREATE TABLE part (partkey INT, retailprice FLOAT)")
>>> db.execute("INSERT INTO part VALUES (1, 9.99), (2, 19.99)")
2
>>> db.query("SELECT partkey FROM part WHERE retailprice > 10")
[(2,)]

DDL and DML run eagerly; ``prepare`` returns a steppable
:class:`~repro.engine.executor.QueryExecution` for cooperative execution
(what the simulator timeshares and progress indicators observe).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.engine.cancel import CancellationToken
from repro.engine.catalog import Catalog, Table
from repro.engine.errors import PlanError
from repro.engine.executor import QueryExecution
from repro.engine.memory import MemoryGovernor
from repro.engine.expr import Env, bind_expr, BindContext, Layout
from repro.engine.operators.base import WorkAccount
from repro.engine.planner import Planner
from repro.engine.schema import Column, TableSchema
from repro.engine.sql import ast, parse_statement
from repro.engine.stats import analyze_table
from repro.engine.storage import DEFAULT_PAGE_CAPACITY
from repro.engine.types import SqlType


class Database:
    """An in-memory SQL database with a steppable executor."""

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        self.catalog = Catalog(page_capacity=page_capacity)
        self.planner = Planner(self.catalog)

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Run one statement of any kind.

        Returns query rows for SELECT, the inserted-row count for INSERT,
        and ``None`` for DDL.
        """
        statement = parse_statement(sql)
        if isinstance(statement, (ast.Select, ast.Union)):
            return self._run_query(statement, sql)
        if isinstance(statement, ast.Insert):
            return self._run_insert(statement)
        if isinstance(statement, ast.CreateTable):
            self._run_create_table(statement)
            return None
        if isinstance(statement, ast.CreateIndex):
            self.catalog.create_index(
                statement.name, statement.table, statement.column
            )
            return None
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name)
            return None
        if isinstance(statement, ast.Update):
            return self._run_update(statement)
        if isinstance(statement, ast.Delete):
            return self._run_delete(statement)
        if isinstance(statement, ast.Analyze):
            self.analyze(statement.table)
            return None
        if isinstance(statement, ast.Explain):
            account = WorkAccount()
            inner = statement.statement
            if isinstance(inner, ast.Union):
                root = self.planner.plan_union(inner, account)
            else:
                root = self.planner.plan_select(inner, account)
            return root.explain()
        raise PlanError(f"unsupported statement {type(statement).__name__}")

    def query(self, sql: str) -> list[tuple]:
        """Run a SELECT (or UNION) to completion and return its rows."""
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.Union)):
            raise PlanError("query() requires a SELECT statement")
        return self._run_query(statement, sql)

    def prepare(
        self,
        sql: str,
        checkpoint_interval: Optional[float] = None,
        cancel_token: Optional["CancellationToken"] = None,
        memory_budget: Optional[int] = None,
    ) -> QueryExecution:
        """Plan a SELECT (or UNION) and return a steppable execution handle.

        Parameters
        ----------
        checkpoint_interval:
            Take a work-preserving checkpoint every so many U's of work.
        cancel_token:
            Cancellation token checked on every work charge.
        memory_budget:
            Soft per-query buffered-row budget; buffering operators
            degrade gracefully past it (see :mod:`repro.engine.memory`).
        """
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.Union)):
            raise PlanError("prepare() requires a SELECT statement")
        memory = MemoryGovernor(memory_budget) if memory_budget is not None else None
        account = WorkAccount(cancel_token=cancel_token, memory=memory)
        if isinstance(statement, ast.Union):
            root = self.planner.plan_union(statement, account)
        else:
            root = self.planner.plan_select(statement, account)
        return QueryExecution(
            root=root,
            account=account,
            sql=sql,
            checkpoint_interval=checkpoint_interval,
        )

    def explain(self, sql: str) -> str:
        """The annotated physical plan of a SELECT."""
        return self.prepare(sql).explain()

    def estimated_cost(self, sql: str) -> float:
        """The optimizer's cost estimate of a SELECT, in U's."""
        return self.prepare(sql).root.est_cost

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _run_query(self, statement, sql: str) -> list[tuple]:
        account = WorkAccount()
        if isinstance(statement, ast.Union):
            root = self.planner.plan_union(statement, account)
        else:
            root = self.planner.plan_select(statement, account)
        execution = QueryExecution(root=root, account=account, sql=sql)
        return execution.run_to_completion()

    def _run_update(self, statement: ast.Update) -> int:
        """UPDATE: evaluate assignments per matching row, rewrite the table.

        The heap is append-only, so updates rewrite the table in place:
        every row is re-validated and indexes are rebuilt.  Returns the
        number of rows updated.
        """
        table = self.catalog.table(statement.table)
        schema = table.schema
        layout = Layout.for_table(statement.table, schema.column_names)
        ctx = BindContext(layout)
        predicate = (
            bind_expr(statement.where, ctx) if statement.where is not None else None
        )
        assignments = [
            (schema.column_position(col), bind_expr(expr, ctx))
            for col, expr in statement.assignments
        ]

        new_rows: list[tuple] = []
        updated = 0
        for _, row in table.heap.scan_rows():
            env = Env(row)
            keep = predicate is None or predicate(env) is True
            if keep:
                values = list(row)
                for pos, compute in assignments:
                    values[pos] = compute(env)
                new_rows.append(schema.validate_row(values))
                updated += 1
            else:
                new_rows.append(row)
        self._rewrite_table(table, new_rows)
        return updated

    def _run_delete(self, statement: ast.Delete) -> int:
        """DELETE: drop matching rows, rewrite the table.

        Returns the number of rows deleted.
        """
        table = self.catalog.table(statement.table)
        layout = Layout.for_table(statement.table, table.schema.column_names)
        ctx = BindContext(layout)
        predicate = (
            bind_expr(statement.where, ctx) if statement.where is not None else None
        )
        survivors: list[tuple] = []
        deleted = 0
        for _, row in table.heap.scan_rows():
            if predicate is None or predicate(Env(row)) is True:
                deleted += 1
            else:
                survivors.append(row)
        self._rewrite_table(table, survivors)
        return deleted

    def _rewrite_table(self, table: Table, rows: list[tuple]) -> None:
        """Replace a table's heap contents and rebuild its indexes."""
        from repro.engine.storage import HeapFile

        table.heap = HeapFile(self.catalog.page_capacity)
        index_positions = {
            name: table.schema.column_position(index.column)
            for name, index in table.indexes.items()
        }
        fresh = {}
        for name, index in table.indexes.items():
            from repro.engine.index import BTreeIndex

            fresh[name] = BTreeIndex(
                name=index.name,
                table=index.table,
                column=index.column,
                fanout=index.fanout,
                leaf_capacity=index.leaf_capacity,
            )
        for row in rows:
            rid = table.heap.append(row)
            for name, index in fresh.items():
                index.insert(row[index_positions[name]], rid)
        table.indexes = fresh
        table.stats = None

    def _run_insert(self, statement: ast.Insert) -> int:
        table = self.catalog.table(statement.table)
        schema = table.schema
        empty_ctx = BindContext(Layout([]))
        env = Env(())

        if statement.columns:
            positions = [schema.column_position(c) for c in statement.columns]
        else:
            positions = list(range(len(schema.columns)))

        count = 0
        for value_row in statement.rows:
            if len(value_row) != len(positions):
                raise PlanError(
                    f"INSERT expects {len(positions)} values, got {len(value_row)}"
                )
            full: list[Any] = [None] * len(schema.columns)
            for pos, expr in zip(positions, value_row):
                full[pos] = bind_expr(expr, empty_ctx)(env)
            table.insert(full)
            count += 1
        return count

    def _run_create_table(self, statement: ast.CreateTable) -> Table:
        columns = [
            Column(
                name=c.name,
                sql_type=SqlType.parse(c.type_name),
                nullable=c.nullable,
            )
            for c in statement.columns
        ]
        return self.catalog.create_table(TableSchema.of(statement.name, columns))

    # ------------------------------------------------------------------
    # Maintenance utilities
    # ------------------------------------------------------------------

    def analyze(self, table_name: Optional[str] = None) -> None:
        """Collect statistics for one table (or all tables)."""
        if table_name is not None:
            analyze_table(self.catalog.table(table_name))
            return
        for table in self.catalog.tables():
            analyze_table(table)

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk-insert Python values directly (bypasses SQL parsing)."""
        return self.catalog.table(table_name).insert_many(rows)
