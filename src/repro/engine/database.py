"""The user-facing database facade.

:class:`Database` ties the catalog, parser, planner and executor together:

>>> db = Database()
>>> db.execute("CREATE TABLE part (partkey INT, retailprice FLOAT)")
>>> db.execute("INSERT INTO part VALUES (1, 9.99), (2, 19.99)")
2
>>> db.query("SELECT partkey FROM part WHERE retailprice > 10")
[(2,)]

DDL and DML run eagerly; ``prepare`` returns a steppable
:class:`~repro.engine.executor.QueryExecution` for cooperative execution
(what the simulator timeshares and progress indicators observe).

Repeated statements are cheap: parsed ASTs are memoized by SQL text, and
for subquery-free statements :meth:`Database.query` also pools the bound
physical plan, keyed on ``(sql, execution mode, decorrelation)`` and
validated against the catalog's ``stats_epoch`` -- any DDL, DML, or
ANALYZE bumps the epoch and invalidates stale plans.  "Subquery-free" is
judged on the statement *after* the decorrelation rewrite, so a correlated
query the pass turns into joins pools like any other join query.  Pooled plans are reset before reuse (work
account zeroed, materialized caches dropped) so a cache hit is
work-for-work identical to a fresh plan.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.engine.cancel import CancellationToken
from repro.engine.catalog import Catalog, Table
from repro.engine.decorrelate import decorrelate_statement, resolve_decorrelation
from repro.engine.errors import PlanError
from repro.engine.executor import QueryExecution
from repro.engine.memory import MemoryGovernor
from repro.engine.expr import Env, bind_expr, expr_contains_subquery, BindContext, Layout
from repro.engine.mode import resolve_execution_mode
from repro.engine.operators.base import Operator, WorkAccount
from repro.engine.operators.transforms import Materialize
from repro.engine.planner import Planner
from repro.engine.schema import Column, TableSchema
from repro.engine.sql import ast, parse_statement
from repro.engine.stats import analyze_table
from repro.engine.storage import DEFAULT_PAGE_CAPACITY
from repro.engine.types import SqlType
from repro.obs.runtime import resolve as _resolve_obs

#: Plan-pool size cap; the pool is cleared wholesale past this (simple,
#: and the workloads this engine serves repeat a small set of templates).
_PLAN_POOL_LIMIT = 256


def _statement_is_poolable(statement: ast.Select | ast.Union) -> bool:
    """Whether a statement's physical plan is safe to pool.

    Subquery-containing plans register per-subquery cost/materialization
    records against their account at bind time; pooling them would need
    those reset too.  They are rare in the workloads and stay unpooled.
    """
    if isinstance(statement, ast.Union):
        if any(expr_contains_subquery(o.expr) for o in statement.order_by):
            return False
        return all(_statement_is_poolable(b) for b in statement.branches)

    def from_item_ok(item: object) -> bool:
        if isinstance(item, ast.TableRef):
            return True
        if isinstance(item, ast.DerivedTable):
            # Derived tables pool iff their body would (the decorrelation
            # rewrite grafts subquery-free grouped bodies into FROM).
            return _statement_is_poolable(item.select)
        if isinstance(item, ast.Join):
            if item.condition is not None and expr_contains_subquery(item.condition):
                return False
            return from_item_ok(item.left) and from_item_ok(item.right)
        return False

    exprs: list[ast.Expr] = [it.expr for it in statement.items]
    if statement.where is not None:
        exprs.append(statement.where)
    exprs.extend(statement.group_by)
    if statement.having is not None:
        exprs.append(statement.having)
    exprs.extend(o.expr for o in statement.order_by)
    if any(expr_contains_subquery(e) for e in exprs):
        return False
    return all(from_item_ok(item) for item in statement.from_items)


def _clear_materialized(root: Operator) -> None:
    """Drop Materialize caches so a pooled plan re-charges like a fresh one."""
    if isinstance(root, Materialize):
        root._cache = None
    for child in root.children():
        _clear_materialized(child)


class Database:
    """An in-memory SQL database with a steppable executor."""

    def __init__(
        self,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        execution_mode: Optional[str] = None,
        batch_size: Optional[int] = None,
        decorrelate: Optional[bool] = None,
    ) -> None:
        if execution_mode is not None:
            resolve_execution_mode(execution_mode)  # validate eagerly
        self.catalog = Catalog(page_capacity=page_capacity)
        #: Subquery-decorrelation override for this database (``None``
        #: defers to the module default at call time).
        self.decorrelate = decorrelate
        self.planner = Planner(self.catalog, decorrelate=decorrelate)
        #: Default execution mode for this database's queries (``None``
        #: defers to the module-level default at call time).
        self.execution_mode = execution_mode
        #: Default vector width for batch-mode executions (``None`` =
        #: engine default).
        self.batch_size = batch_size
        self._statement_cache: dict[str, ast.Select | ast.Union] = {}
        self._plan_pool: dict[
            tuple[str, str, bool], tuple[int, Operator, WorkAccount]
        ] = {}
        #: Plan-pool hits/misses (``query()`` only; ``prepare`` always replans).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Statement (parse) cache hits.
        self.statement_cache_hits = 0

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------

    def _resolve_mode(self, execution_mode: Optional[str]) -> str:
        return resolve_execution_mode(
            execution_mode if execution_mode is not None else self.execution_mode
        )

    def _parse_query(self, sql: str) -> ast.Select | ast.Union:
        """Parse a SELECT/UNION through the statement cache."""
        cached = self._statement_cache.get(sql)
        if cached is not None:
            self.statement_cache_hits += 1
            return cached
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.Union)):
            raise PlanError("requires a SELECT (or UNION) statement")
        self._statement_cache[sql] = statement
        if len(self._statement_cache) > _PLAN_POOL_LIMIT:
            self._statement_cache.clear()
            self._statement_cache[sql] = statement
        return statement

    def invalidate_plan_cache(self) -> None:
        """Drop all cached statements and pooled plans."""
        self._statement_cache.clear()
        self._plan_pool.clear()

    def _note_plan_cache(self, hit: bool) -> None:
        if hit:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
        obs = _resolve_obs(None)
        if obs is not None:
            name = "engine.plan_cache.hit" if hit else "engine.plan_cache.miss"
            obs.metrics.counter(name).inc()

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Run one statement of any kind.

        Returns query rows for SELECT, the inserted-row count for INSERT,
        and ``None`` for DDL.
        """
        statement = parse_statement(sql)
        if isinstance(statement, (ast.Select, ast.Union)):
            return self._run_query(statement, sql)
        if isinstance(statement, ast.Insert):
            return self._run_insert(statement)
        if isinstance(statement, ast.CreateTable):
            self._run_create_table(statement)
            return None
        if isinstance(statement, ast.CreateIndex):
            self.catalog.create_index(
                statement.name, statement.table, statement.column
            )
            return None
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name)
            return None
        if isinstance(statement, ast.Update):
            return self._run_update(statement)
        if isinstance(statement, ast.Delete):
            return self._run_delete(statement)
        if isinstance(statement, ast.Analyze):
            self.analyze(statement.table)
            return None
        if isinstance(statement, ast.Explain):
            account = WorkAccount()
            inner = statement.statement
            if isinstance(inner, ast.Union):
                root = self.planner.plan_union(inner, account)
            else:
                root = self.planner.plan_select(inner, account)
            return root.explain()
        raise PlanError(f"unsupported statement {type(statement).__name__}")

    def query(
        self, sql: str, execution_mode: Optional[str] = None
    ) -> list[tuple]:
        """Run a SELECT (or UNION) to completion and return its rows.

        Synchronous queries go through the plan pool: a repeated
        subquery-free statement at an unchanged stats epoch reuses its
        bound plan instead of re-parsing and re-planning.
        """
        statement = self._parse_query(sql)
        mode = self._resolve_mode(execution_mode)
        deco = resolve_decorrelation(self.decorrelate)
        key = (sql, mode, deco)
        epoch = self.catalog.stats_epoch
        entry = self._plan_pool.get(key)
        if entry is not None and entry[0] == epoch:
            self._note_plan_cache(hit=True)
            _, root, account = entry
            account.total = 0.0
            _clear_materialized(root)
            execution = QueryExecution(
                root=root,
                account=account,
                sql=sql,
                execution_mode=mode,
                batch_size=self.batch_size,
            )
            return execution.run_to_completion()
        self._note_plan_cache(hit=False)
        account = WorkAccount()
        # Pool eligibility is decided on the *rewritten* statement: a
        # decorrelated query is subquery-free even when its SQL text is
        # not, and its plan pools like any join.  (The planner re-runs
        # the pass internally; on an already-rewritten statement it is a
        # no-op, so this costs one extra walk, not a second rewrite.)
        planned = statement
        if deco:
            planned, _ = decorrelate_statement(statement, self.catalog)
        if isinstance(planned, ast.Union):
            root = self.planner.plan_union(planned, account)
        else:
            root = self.planner.plan_select(planned, account)
        execution = QueryExecution(
            root=root,
            account=account,
            sql=sql,
            execution_mode=mode,
            batch_size=self.batch_size,
        )
        rows = execution.run_to_completion()
        if _statement_is_poolable(planned):
            if len(self._plan_pool) >= _PLAN_POOL_LIMIT:
                self._plan_pool.clear()
            self._plan_pool[key] = (epoch, root, account)
        return rows

    def prepare(
        self,
        sql: str,
        checkpoint_interval: Optional[float] = None,
        cancel_token: Optional["CancellationToken"] = None,
        memory_budget: Optional[int] = None,
        execution_mode: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> QueryExecution:
        """Plan a SELECT (or UNION) and return a steppable execution handle.

        Always plans fresh (executions are concurrent and stateful); only
        the parsed statement is cached.

        Parameters
        ----------
        checkpoint_interval:
            Take a work-preserving checkpoint every so many U's of work.
        cancel_token:
            Cancellation token checked on every work charge.
        memory_budget:
            Soft per-query buffered-row budget; buffering operators
            degrade gracefully past it (see :mod:`repro.engine.memory`).
        execution_mode:
            ``"batch"`` (vectorized) or ``"row"``; defaults to the
            database's mode, then the engine-wide default.
        batch_size:
            Vector width for batch mode.
        """
        statement = self._parse_query(sql)
        memory = MemoryGovernor(memory_budget) if memory_budget is not None else None
        account = WorkAccount(cancel_token=cancel_token, memory=memory)
        if isinstance(statement, ast.Union):
            root = self.planner.plan_union(statement, account)
        else:
            root = self.planner.plan_select(statement, account)
        return QueryExecution(
            root=root,
            account=account,
            sql=sql,
            checkpoint_interval=checkpoint_interval,
            execution_mode=self._resolve_mode(execution_mode),
            batch_size=batch_size if batch_size is not None else self.batch_size,
        )

    def explain(self, sql: str) -> str:
        """The annotated physical plan of a SELECT."""
        return self.prepare(sql).explain()

    def estimated_cost(self, sql: str) -> float:
        """The optimizer's cost estimate of a SELECT, in U's."""
        return self.prepare(sql).root.est_cost

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _run_query(self, statement, sql: str) -> list[tuple]:
        account = WorkAccount()
        if isinstance(statement, ast.Union):
            root = self.planner.plan_union(statement, account)
        else:
            root = self.planner.plan_select(statement, account)
        execution = QueryExecution(
            root=root,
            account=account,
            sql=sql,
            execution_mode=self._resolve_mode(None),
            batch_size=self.batch_size,
        )
        return execution.run_to_completion()

    def _run_update(self, statement: ast.Update) -> int:
        """UPDATE: evaluate assignments per matching row, rewrite the table.

        The heap is append-only, so updates rewrite the table in place:
        every row is re-validated and indexes are rebuilt.  Returns the
        number of rows updated.
        """
        table = self.catalog.table(statement.table)
        schema = table.schema
        layout = Layout.for_table(statement.table, schema.column_names)
        ctx = BindContext(layout)
        predicate = (
            bind_expr(statement.where, ctx) if statement.where is not None else None
        )
        assignments = [
            (schema.column_position(col), bind_expr(expr, ctx))
            for col, expr in statement.assignments
        ]

        new_rows: list[tuple] = []
        updated = 0
        for _, row in table.heap.scan_rows():
            env = Env(row)
            keep = predicate is None or predicate(env) is True
            if keep:
                values = list(row)
                for pos, compute in assignments:
                    values[pos] = compute(env)
                new_rows.append(schema.validate_row(values))
                updated += 1
            else:
                new_rows.append(row)
        self._rewrite_table(table, new_rows)
        return updated

    def _run_delete(self, statement: ast.Delete) -> int:
        """DELETE: drop matching rows, rewrite the table.

        Returns the number of rows deleted.
        """
        table = self.catalog.table(statement.table)
        layout = Layout.for_table(statement.table, table.schema.column_names)
        ctx = BindContext(layout)
        predicate = (
            bind_expr(statement.where, ctx) if statement.where is not None else None
        )
        survivors: list[tuple] = []
        deleted = 0
        for _, row in table.heap.scan_rows():
            if predicate is None or predicate(Env(row)) is True:
                deleted += 1
            else:
                survivors.append(row)
        self._rewrite_table(table, survivors)
        return deleted

    def _rewrite_table(self, table: Table, rows: list[tuple]) -> None:
        """Replace a table's heap contents and rebuild its indexes."""
        from repro.engine.storage import HeapFile

        # Keep the table's own capacity: it may differ from the catalog
        # default when created via ``create_table(..., page_capacity=...)``.
        table.heap = HeapFile(table.heap.page_capacity)
        index_positions = {
            name: table.schema.column_position(index.column)
            for name, index in table.indexes.items()
        }
        fresh = {}
        for name, index in table.indexes.items():
            from repro.engine.index import BTreeIndex

            fresh[name] = BTreeIndex(
                name=index.name,
                table=index.table,
                column=index.column,
                fanout=index.fanout,
                leaf_capacity=index.leaf_capacity,
            )
        for row in rows:
            rid = table.heap.append(row)
            for name, index in fresh.items():
                index.insert(row[index_positions[name]], rid)
        table.indexes = fresh
        table.stats = None
        self.catalog.bump_stats_epoch()

    def _run_insert(self, statement: ast.Insert) -> int:
        table = self.catalog.table(statement.table)
        schema = table.schema
        empty_ctx = BindContext(Layout([]))
        env = Env(())

        if statement.columns:
            positions = [schema.column_position(c) for c in statement.columns]
        else:
            positions = list(range(len(schema.columns)))

        count = 0
        for value_row in statement.rows:
            if len(value_row) != len(positions):
                raise PlanError(
                    f"INSERT expects {len(positions)} values, got {len(value_row)}"
                )
            full: list[Any] = [None] * len(schema.columns)
            for pos, expr in zip(positions, value_row):
                full[pos] = bind_expr(expr, empty_ctx)(env)
            table.insert(full)
            count += 1
        return count

    def _run_create_table(
        self, statement: ast.CreateTable, page_capacity: int | None = None
    ) -> Table:
        columns = [
            Column(
                name=c.name,
                sql_type=SqlType.parse(c.type_name),
                nullable=c.nullable,
            )
            for c in statement.columns
        ]
        return self.catalog.create_table(
            TableSchema.of(statement.name, columns), page_capacity=page_capacity
        )

    def create_table(self, ddl: str, page_capacity: int | None = None) -> Table:
        """Run a CREATE TABLE statement with an optional per-table page
        capacity override (used by benchmarks to sweep page sizes).

        Raises
        ------
        PlanError
            If *ddl* is not a CREATE TABLE statement.
        """
        statement = parse_statement(ddl)
        if not isinstance(statement, ast.CreateTable):
            raise PlanError("create_table expects a CREATE TABLE statement")
        return self._run_create_table(statement, page_capacity=page_capacity)

    # ------------------------------------------------------------------
    # Maintenance utilities
    # ------------------------------------------------------------------

    def analyze(self, table_name: Optional[str] = None) -> None:
        """Collect statistics for one table (or all tables)."""
        if table_name is not None:
            analyze_table(self.catalog.table(table_name))
            self.catalog.bump_stats_epoch()
            return
        for table in self.catalog.tables():
            analyze_table(table)
        self.catalog.bump_stats_epoch()

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk-insert Python values directly (bypasses SQL parsing)."""
        return self.catalog.table(table_name).insert_many(rows)
