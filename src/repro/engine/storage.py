"""Page-based columnar heap storage.

Rows live in fixed-capacity pages; **reading or writing one page costs one U**
(the paper's work unit: "the amount of work required to process one page of
bytes").  The heap file exposes page-granular scans so operators can account
work faithfully, plus RID-based fetches for index lookups.

Pages are **columnar**: each page keeps one :class:`ColumnVector` per column
(arity inferred from the first row appended), so the vectorized batch path
can hand whole column vectors to expression evaluation and aggregation
without building row tuples.  The row-tuple view (:attr:`Page.rows`) is a
lazily-built, cached materialization used by row mode -- the differential
oracle -- and by whole-row consumers such as ``scan_rows``; sparse RID
fetches build a single tuple via :meth:`Page.row` without materializing the
page.  The layout changes how bytes are read, never what a page *is*: every
work charge lands at exactly the same point as under the row-tuple layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.engine.errors import ExecutionError
from repro.engine.vector import ColumnVector

#: Default number of rows per page.  Small enough that realistic tables span
#: many pages, large enough that per-page Python overhead stays low.
DEFAULT_PAGE_CAPACITY = 50


@dataclass(frozen=True)
class RID:
    """Row identifier: (page number, slot within the page)."""

    page_no: int
    slot: int


class Page:
    """A fixed-capacity columnar container of rows.

    ``columns`` is ``None`` until the first append fixes the arity; pages
    of zero-column rows keep ``columns == []`` and only count rows.
    """

    __slots__ = ("capacity", "columns", "_count", "_rows")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("page capacity must be >= 1")
        self.capacity = capacity
        self.columns: list[ColumnVector] | None = None
        self._count = 0
        self._rows: list[tuple] | None = None

    @property
    def full(self) -> bool:
        """Whether the page has no free slots."""
        return self._count >= self.capacity

    def append(self, row: tuple) -> int:
        """Store *row*; return its slot number."""
        if self._count >= self.capacity:
            raise ExecutionError("page overflow")
        columns = self.columns
        if columns is None:
            columns = self.columns = [ColumnVector() for _ in row]
        elif len(row) != len(columns):
            raise ExecutionError(
                f"row arity {len(row)} does not match page arity {len(columns)}"
            )
        for column, value in zip(columns, row):
            column.push(value)
        self._count += 1
        self._rows = None
        return self._count - 1

    @property
    def rows(self) -> list[tuple]:
        """The page's rows as tuples (lazily materialized, then cached)."""
        rows = self._rows
        if rows is None:
            if self.columns:
                rows = list(zip(*self.columns))
            else:
                rows = [()] * self._count
            self._rows = rows
        return rows

    def row(self, slot: int) -> tuple:
        """Build the single tuple at *slot* (for sparse RID fetches).

        Raises
        ------
        ExecutionError
            For an out-of-range slot.
        """
        if not 0 <= slot < self._count:
            raise ExecutionError(f"slot {slot} out of range")
        rows = self._rows
        if rows is not None:
            return rows[slot]
        if not self.columns:
            return ()
        return tuple(column[slot] for column in self.columns)

    def __len__(self) -> int:
        return self._count


class HeapFile:
    """An append-only sequence of pages holding one table's rows."""

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        if page_capacity < 1:
            raise ValueError("page_capacity must be >= 1")
        self.page_capacity = page_capacity
        self._pages: list[Page] = []
        self._row_count = 0

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def row_count(self) -> int:
        """Number of stored rows."""
        return self._row_count

    def append(self, row: Sequence[Any]) -> RID:
        """Append one row; returns its :class:`RID`."""
        stored = tuple(row)
        if not self._pages or self._pages[-1].full:
            self._pages.append(Page(self.page_capacity))
        slot = self._pages[-1].append(stored)
        self._row_count += 1
        return RID(page_no=len(self._pages) - 1, slot=slot)

    def page(self, page_no: int) -> Page:
        """The page numbered *page_no*.

        Raises
        ------
        ExecutionError
            For an out-of-range page number.
        """
        if not 0 <= page_no < len(self._pages):
            raise ExecutionError(f"page {page_no} out of range")
        return self._pages[page_no]

    def fetch(self, rid: RID) -> tuple:
        """The row stored at *rid*.

        Raises
        ------
        ExecutionError
            For a dangling RID.
        """
        page = self.page(rid.page_no)
        if not 0 <= rid.slot < len(page):
            raise ExecutionError(f"slot {rid.slot} out of range on page {rid.page_no}")
        return page.row(rid.slot)

    def scan_pages(self) -> Iterator[tuple[int, Page]]:
        """Iterate ``(page_no, page)`` pairs in storage order."""
        return iter(enumerate(self._pages))

    def scan_rows(self) -> Iterator[tuple[RID, tuple]]:
        """Iterate all rows with their RIDs (no work accounting here)."""
        for page_no, page in enumerate(self._pages):
            for slot, row in enumerate(page.rows):
                yield RID(page_no, slot), row
