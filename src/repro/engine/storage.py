"""Page-based heap storage.

Rows live in fixed-capacity pages; **reading or writing one page costs one U**
(the paper's work unit: "the amount of work required to process one page of
bytes").  The heap file exposes page-granular scans so operators can account
work faithfully, plus RID-based fetches for index lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.engine.errors import ExecutionError

#: Default number of rows per page.  Small enough that realistic tables span
#: many pages, large enough that per-page Python overhead stays low.
DEFAULT_PAGE_CAPACITY = 50


@dataclass(frozen=True)
class RID:
    """Row identifier: (page number, slot within the page)."""

    page_no: int
    slot: int


class Page:
    """A fixed-capacity container of row tuples."""

    __slots__ = ("rows", "capacity")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("page capacity must be >= 1")
        self.capacity = capacity
        self.rows: list[tuple] = []

    @property
    def full(self) -> bool:
        """Whether the page has no free slots."""
        return len(self.rows) >= self.capacity

    def append(self, row: tuple) -> int:
        """Store *row*; return its slot number."""
        if self.full:
            raise ExecutionError("page overflow")
        self.rows.append(row)
        return len(self.rows) - 1

    def __len__(self) -> int:
        return len(self.rows)


class HeapFile:
    """An append-only sequence of pages holding one table's rows."""

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        if page_capacity < 1:
            raise ValueError("page_capacity must be >= 1")
        self.page_capacity = page_capacity
        self._pages: list[Page] = []
        self._row_count = 0

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def row_count(self) -> int:
        """Number of stored rows."""
        return self._row_count

    def append(self, row: Sequence[Any]) -> RID:
        """Append one row; returns its :class:`RID`."""
        stored = tuple(row)
        if not self._pages or self._pages[-1].full:
            self._pages.append(Page(self.page_capacity))
        slot = self._pages[-1].append(stored)
        self._row_count += 1
        return RID(page_no=len(self._pages) - 1, slot=slot)

    def page(self, page_no: int) -> Page:
        """The page numbered *page_no*.

        Raises
        ------
        ExecutionError
            For an out-of-range page number.
        """
        if not 0 <= page_no < len(self._pages):
            raise ExecutionError(f"page {page_no} out of range")
        return self._pages[page_no]

    def fetch(self, rid: RID) -> tuple:
        """The row stored at *rid*.

        Raises
        ------
        ExecutionError
            For a dangling RID.
        """
        page = self.page(rid.page_no)
        if not 0 <= rid.slot < len(page.rows):
            raise ExecutionError(f"slot {rid.slot} out of range on page {rid.page_no}")
        return page.rows[rid.slot]

    def scan_pages(self) -> Iterator[tuple[int, Page]]:
        """Iterate ``(page_no, page)`` pairs in storage order."""
        return iter(enumerate(self._pages))

    def scan_rows(self) -> Iterator[tuple[RID, tuple]]:
        """Iterate all rows with their RIDs (no work accounting here)."""
        for page_no, page in enumerate(self._pages):
            for slot, row in enumerate(page.rows):
                yield RID(page_no, slot), row
