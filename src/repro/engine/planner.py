"""The query planner: SELECT AST -> annotated operator tree.

A rule-based planner with cost annotations:

* WHERE clauses are split into conjuncts; single-table, subquery-free
  conjuncts are pushed down to their table's access path.
* Access paths: an equality conjunct ``col = <expr with no local columns>``
  on an indexed column becomes an :class:`IndexScan` (the probe expression
  may reference *outer* scopes -- that is exactly how the paper's correlated
  subquery plans to an index scan on ``lineitem``); everything else is a
  :class:`SeqScan` plus filters.
* Joins are built left-deep in FROM order; an equality conjunct linking the
  two sides becomes a :class:`HashJoin` (smaller side builds), otherwise a
  nested loop over a materialized inner.
* Aggregates are extracted from the select list / HAVING / ORDER BY and
  computed by a :class:`HashAggregate`; outer expressions are rewritten to
  reference the aggregate's output slots.
* Scalar/EXISTS/IN subqueries are compiled recursively with the enclosing
  scope as their outer binding context; their estimated cost is folded into
  the enclosing filter's cost (cardinality x per-probe cost -- the dominant
  term for the paper's workload).

Every operator is annotated with ``est_cost`` / ``est_rows``; the root's
``est_cost`` is the optimizer estimate a progress indicator starts from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.engine import cost as costmodel
from repro.engine.catalog import Catalog, Table
from repro.engine.decorrelate import decorrelate_select, resolve_decorrelation
from repro.engine.errors import PlanError
from repro.engine.expr import (
    BindContext,
    BoundExpr,
    ColumnSlot,
    Env,
    Layout,
    bind_expr,
    slot_expr,
)
from repro.engine.operators.agg import AggSpec, HashAggregate
from repro.engine.operators.base import Operator, WorkAccount
from repro.engine.operators.joins import HashJoin, NestedLoopJoin
from repro.engine.operators.scans import IndexScan, SeqScan
from repro.engine.operators.sort import Sort
from repro.engine.operators.transforms import (
    Concat,
    Distinct,
    Filter,
    Limit,
    Materialize,
    Project,
    SingleRow,
)
from repro.engine.sql import ast
from repro.engine.stats import (
    DEFAULT_RANGE_SELECTIVITY,
    Selectivity,
    analyze_table,
)

#: Qualifier used for synthesized aggregate/group output slots; cannot be
#: produced by user SQL, so it never collides with real bindings.
AGG_QUALIFIER = "#agg"


@dataclass
class _SubqueryRecord:
    """A subquery compiled while binding one expression."""

    root: Operator
    runner: Callable[[Env], list]
    #: Correlated subqueries cost their plan per outer row; uncorrelated
    #: ones (init-plans) run once regardless of outer cardinality.
    correlated: bool = True


class Planner:
    """Plans SELECT statements against a catalog."""

    def __init__(
        self, catalog: Catalog, decorrelate: Optional[bool] = None
    ) -> None:
        self.catalog = catalog
        #: Per-planner override for the subquery-decorrelation rewrite
        #: pass (``None`` defers to the module default at plan time).
        self.decorrelate = decorrelate

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def plan_select(
        self,
        select: ast.Select,
        account: WorkAccount,
        outer_ctx: Optional[BindContext] = None,
    ) -> Operator:
        """Compile *select* into an operator tree charging *account*.

        Raises
        ------
        PlanError
            On unknown tables/columns, misplaced aggregates, etc.
        """
        # Top-level plans (and the subquery-free SELECTs the rewrite
        # emits) run the decorrelation pass first; correlated subquery
        # bodies arrive with an enclosing context and are planned as-is.
        if outer_ctx is None and resolve_decorrelation(self.decorrelate):
            select, _ = decorrelate_select(select, self.catalog)

        subqueries: list[_SubqueryRecord] = []

        def plan_any(sub, outer):
            if isinstance(sub, ast.Union):
                return self.plan_union(sub, account, outer_ctx=outer)
            return self.plan_select(sub, account, outer_ctx=outer)

        def compile_subquery(
            sub, enclosing: BindContext
        ) -> Callable[[Env], list]:
            # An *uncorrelated* subquery (one that plans successfully with
            # no enclosing scope) is an init-plan: run it once, cache the
            # rows, and never recharge its work -- like PostgreSQL's
            # InitPlan.  Correlated subqueries re-execute per outer row.
            try:
                root = plan_any(sub, None)
                correlated = False
            except PlanError:
                root = plan_any(sub, enclosing)
                correlated = True

            if correlated:
                def runner(env: Env) -> list:
                    return list(root.rows(env))
            else:
                cache: list | None = None

                def runner(env: Env) -> list:
                    nonlocal cache
                    if cache is None:
                        cache = list(root.rows(None))
                    return cache

            # Execution-time hooks (e.g. the uncorrelated IN membership
            # probe in expr.py) key off this tag.
            runner.correlated = correlated
            subqueries.append(
                _SubqueryRecord(root=root, runner=runner, correlated=correlated)
            )
            return runner

        # ---- FROM --------------------------------------------------------
        where_conjuncts = _split_conjuncts(select.where)
        plan, from_ctx, consumed = self._plan_from(
            select.from_items, where_conjuncts, account, outer_ctx,
            compile_subquery,
        )
        remaining = [c for i, c in enumerate(where_conjuncts) if i not in consumed]

        # ---- residual WHERE ---------------------------------------------
        for conjunct in remaining:
            plan = self._apply_filter(
                plan, conjunct, from_ctx, subqueries, label="where"
            )

        # ---- aggregation --------------------------------------------------
        select_items = _expand_stars(select.items, from_ctx.layout)
        needs_agg = bool(select.group_by) or any(
            ast.contains_aggregate(item.expr) for item in select_items
        )
        if select.having is not None and not needs_agg:
            needs_agg = True

        if needs_agg:
            plan, post_ctx = self._plan_aggregate(
                plan, select, select_items, from_ctx, subqueries
            )
            select_items = tuple(
                ast.SelectItem(
                    expr=_rewrite_for_agg(item.expr, self._agg_rewrites),
                    alias=item.alias,
                )
                for item in select_items
            )
            having = (
                _rewrite_for_agg(select.having, self._agg_rewrites)
                if select.having is not None
                else None
            )
            if having is not None:
                plan = self._apply_filter(
                    plan, having, post_ctx, subqueries, label="having"
                )
            current_ctx = post_ctx
        else:
            current_ctx = from_ctx

        # ---- projection (+ hidden ORDER BY columns) -----------------------
        output_names = _output_names(select_items)
        order_items = select.order_by
        if needs_agg:
            order_items = tuple(
                ast.OrderItem(
                    expr=_rewrite_for_agg(o.expr, self._agg_rewrites),
                    descending=o.descending,
                )
                for o in order_items
            )

        proj_exprs: list[ast.Expr] = [item.expr for item in select_items]
        sort_slots: list[tuple[int, bool]] = []
        hidden = 0
        for item in order_items:
            slot = _match_order_target(item.expr, select_items, output_names)
            if slot is None:
                proj_exprs.append(item.expr)
                slot = len(proj_exprs) - 1
                hidden += 1
            sort_slots.append((slot, item.descending))

        if select.distinct and hidden:
            raise PlanError(
                "ORDER BY expressions must appear in the select list "
                "when DISTINCT is used"
            )

        bound = [
            self._bind_checked(e, current_ctx, subqueries) for e in proj_exprs
        ]
        slots = [
            ColumnSlot(None, output_names[i])
            if i < len(output_names)
            else ColumnSlot(AGG_QUALIFIER, f"__ord{i}")
            for i in range(len(proj_exprs))
        ]
        per_row_cost, one_time_cost = self._drain_subquery_cost(subqueries)
        child_est = costmodel.Estimate(plan.est_cost, plan.est_rows)
        plan = Project(plan, bound, Layout(slots))
        plan.est_cost = (
            child_est.cost + child_est.rows * per_row_cost + one_time_cost
        )
        plan.est_rows = child_est.rows

        # ---- distinct / sort / limit --------------------------------------
        if select.distinct:
            child = plan
            plan = Distinct(child)
            plan.est_cost = child.est_cost
            plan.est_rows = max(child.est_rows * 0.5, min(child.est_rows, 1.0))

        if sort_slots:
            keys = [(slot_expr(i), desc) for i, desc in sort_slots]
            child = plan
            plan = Sort(child, keys, rows_per_page=self.catalog.page_capacity)
            est = costmodel.sort(
                costmodel.Estimate(child.est_cost, child.est_rows),
                self.catalog.page_capacity,
            )
            plan.est_cost, plan.est_rows = est.cost, est.rows

        if hidden:
            visible = len(output_names)
            child = plan
            keep = list(range(visible))
            plan = Project(
                child,
                [slot_expr(i) for i in keep],
                Layout(child.layout.slots[:visible]),
            )
            plan.est_cost, plan.est_rows = child.est_cost, child.est_rows

        if select.limit is not None or select.offset is not None:
            child = plan
            plan = Limit(child, select.limit, select.offset or 0)
            est = costmodel.limit(
                costmodel.Estimate(child.est_cost, child.est_rows),
                select.limit,
                select.offset or 0,
            )
            plan.est_cost, plan.est_rows = est.cost, est.rows

        return plan

    def plan_union(
        self,
        union: ast.Union,
        account: WorkAccount,
        outer_ctx: Optional[BindContext] = None,
    ) -> Operator:
        """Compile a UNION [ALL] chain into an operator tree.

        Output columns take the first branch's names.  A trailing ORDER BY
        may reference those output names; LIMIT/OFFSET apply to the whole
        result.

        Raises
        ------
        PlanError
            On arity mismatches or unresolvable ORDER BY references.
        """
        branches = [
            self.plan_select(b, account, outer_ctx) for b in union.branches
        ]
        arity = len(branches[0].layout)
        for branch in branches[1:]:
            if len(branch.layout) != arity:
                raise PlanError(
                    "UNION branches must produce the same number of columns"
                )
        out_layout = Layout(
            [ColumnSlot(None, s.name) for s in branches[0].layout.slots]
        )
        plan: Operator = Concat(branches, out_layout)
        plan.est_cost = sum(b.est_cost for b in branches)
        plan.est_rows = sum(b.est_rows for b in branches)

        if union.deduplicate:
            child = plan
            plan = Distinct(child)
            plan.est_cost = child.est_cost
            plan.est_rows = max(child.est_rows * 0.5, min(child.est_rows, 1.0))

        if union.order_by:
            keys = []
            for item in union.order_by:
                if not isinstance(item.expr, ast.ColumnRef) or item.expr.qualifier:
                    raise PlanError(
                        "ORDER BY on a UNION must reference output column names"
                    )
                idx = out_layout.resolve(item.expr.name, None)
                keys.append((slot_expr(idx), item.descending))
            child = plan
            plan = Sort(child, keys, rows_per_page=self.catalog.page_capacity)
            est = costmodel.sort(
                costmodel.Estimate(child.est_cost, child.est_rows),
                self.catalog.page_capacity,
            )
            plan.est_cost, plan.est_rows = est.cost, est.rows

        if union.limit is not None or union.offset is not None:
            child = plan
            plan = Limit(child, union.limit, union.offset or 0)
            est = costmodel.limit(
                costmodel.Estimate(child.est_cost, child.est_rows),
                union.limit,
                union.offset or 0,
            )
            plan.est_cost, plan.est_rows = est.cost, est.rows
        return plan

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _plan_from(
        self,
        from_items: Sequence[object],
        conjuncts: list[ast.Expr],
        account: WorkAccount,
        outer_ctx: Optional[BindContext],
        compile_subquery,
    ) -> tuple[Operator, BindContext, set[int]]:
        """Build the join tree; returns (plan, context, consumed conjuncts)."""
        if not from_items:
            plan = SingleRow(account)
            plan.est_cost, plan.est_rows = 0.0, 1.0
            ctx = BindContext(
                Layout([]), outer=outer_ctx, subquery_compiler=compile_subquery
            )
            return plan, ctx, set()

        # Flatten explicit joins into a left-deep list with their conditions.
        flat: list[tuple[ast.TableRef, Optional[ast.Expr], str]] = []
        for item in from_items:
            flat.extend(_flatten_from_item(item))

        consumed: set[int] = set()
        plan: Optional[Operator] = None
        layout: Optional[Layout] = None

        for table_ref, join_cond, join_kind in flat:
            if isinstance(table_ref, ast.DerivedTable):
                scan = self._plan_derived_table(
                    table_ref, account, outer_ctx
                )
                scan_layout = scan.layout
                scan_consumed: set[int] = set()
            else:
                table = self.catalog.table(table_ref.name)
                self._ensure_stats(table)
                binding = table_ref.binding

                # WHERE conjuncts must not be pushed into the nullable side
                # of a LEFT JOIN (it would turn it into an inner join).
                pushdown = conjuncts if join_kind != "LEFT" else []
                scan, scan_layout, scan_consumed = self._plan_table_access(
                    table, binding, pushdown, outer_ctx, account,
                    compile_subquery,
                )
            consumed |= scan_consumed

            if plan is None:
                plan, layout = scan, scan_layout
            else:
                plan, layout = self._plan_join(
                    plan, layout, scan, scan_layout,
                    join_cond, join_kind, conjuncts, consumed,
                    outer_ctx, compile_subquery,
                )

        ctx = BindContext(
            layout, outer=outer_ctx, subquery_compiler=compile_subquery
        )
        return plan, ctx, consumed

    def _ensure_stats(self, table: Table) -> None:
        if table.stats is None:
            analyze_table(table)

    def _plan_derived_table(
        self,
        derived: ast.DerivedTable,
        account: WorkAccount,
        outer_ctx: Optional[BindContext],
    ) -> Operator:
        """Plan ``FROM (SELECT ...) alias``: the subplan's output columns
        become the columns of a table named *alias*."""
        sub = derived.select
        if isinstance(sub, ast.Union):
            plan = self.plan_union(sub, account, outer_ctx=outer_ctx)
        else:
            plan = self.plan_select(sub, account, outer_ctx=outer_ctx)
        plan.layout = Layout(
            [ColumnSlot(derived.alias, s.name) for s in plan.layout.slots]
        )
        return plan

    def _plan_table_access(
        self,
        table: Table,
        binding: str,
        conjuncts: list[ast.Expr],
        outer_ctx: Optional[BindContext],
        account: WorkAccount,
        compile_subquery,
    ) -> tuple[Operator, Layout, set[int]]:
        """Choose seq scan vs index scan for one base table."""
        layout = Layout.for_table(binding, table.schema.column_names)
        sel = Selectivity(table.stats)
        local_ctx = BindContext(
            layout, outer=outer_ctx, subquery_compiler=compile_subquery
        )

        # Find pushable conjuncts: subquery-free, local columns only.
        pushable: list[tuple[int, ast.Expr]] = []
        for i, conj in enumerate(conjuncts):
            if _contains_subquery(conj):
                continue
            refs = _collect_column_refs(conj)
            local = [r for r in refs if layout.try_resolve(r.name, r.qualifier) is not None]
            if not local:
                continue
            foreign_local = [
                r
                for r in refs
                if layout.try_resolve(r.name, r.qualifier) is None
                and not _resolves_in_outer(r, outer_ctx)
            ]
            if foreign_local:
                continue  # references another FROM table: a join predicate
            pushable.append((i, conj))

        # Try an index probe among the pushable equality conjuncts.
        probe_choice = None
        for i, conj in enumerate(conjuncts):
            if (i, conj) not in pushable:
                continue
            probe = self._match_index_probe(conj, table, layout, outer_ctx)
            if probe is not None:
                probe_choice = (i, conj, *probe)
                break

        consumed: set[int] = set()
        if probe_choice is not None:
            i, conj, index, column, probe_ast = probe_choice
            probe_ctx = outer_ctx or BindContext(Layout([]))
            probe_bound = bind_expr(probe_ast, probe_ctx)
            scan: Operator = IndexScan(
                table,
                binding,
                index,
                probe_bound,
                account,
                probe_description=str(probe_ast),
            )
            col_stats = table.stats.column(column) if table.stats else None
            est = costmodel.index_probe(
                index,
                float(table.heap.row_count),
                sel.equality(column),
                page_count=table.heap.page_count,
                rows_per_page=self.catalog.page_capacity,
                correlation=col_stats.correlation if col_stats else 0.0,
            )
            scan.est_cost, scan.est_rows = est.cost, est.rows
            consumed.add(i)
        else:
            range_choice = self._match_index_range(
                pushable, table, binding, layout, sel, account
            )
            if range_choice is not None:
                scan, used = range_choice
                consumed |= used
            else:
                scan = SeqScan(table, binding, account)
                est = costmodel.seq_scan(
                    table.heap.page_count, table.heap.row_count
                )
                scan.est_cost, scan.est_rows = est.cost, est.rows

        # Apply the remaining pushable conjuncts as filters.
        for i, conj in pushable:
            if i in consumed:
                continue
            predicate = bind_expr(conj, local_ctx)
            child = scan
            scan = Filter(child, predicate, label=_expr_label(conj))
            selectivity = self._conjunct_selectivity(conj, table, layout)
            est = costmodel.filter_rows(
                costmodel.Estimate(child.est_cost, child.est_rows), selectivity
            )
            scan.est_cost, scan.est_rows = est.cost, est.rows
            consumed.add(i)

        return scan, layout, consumed

    def _match_index_probe(
        self,
        conjunct: ast.Expr,
        table: Table,
        layout: Layout,
        outer_ctx: Optional[BindContext],
    ) -> Optional[tuple]:
        """If *conjunct* is ``indexed_col = non-local expr``, return the probe."""
        if not isinstance(conjunct, ast.BinaryOp) or conjunct.op != "=":
            return None
        for col_side, other in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(col_side, ast.ColumnRef):
                continue
            if layout.try_resolve(col_side.name, col_side.qualifier) is None:
                continue
            index = table.index_on(col_side.name)
            if index is None:
                continue
            other_refs = _collect_column_refs(other)
            if any(
                layout.try_resolve(r.name, r.qualifier) is not None
                for r in other_refs
            ):
                continue  # probe value depends on the scanned table itself
            return (index, col_side.name, other)
        return None

    def _match_index_range(
        self,
        pushable: list[tuple[int, ast.Expr]],
        table: Table,
        binding: str,
        layout: Layout,
        sel: Selectivity,
        account: WorkAccount,
    ):
        """Build a range index scan from literal range conjuncts, if cheaper.

        Collects ``col < / <= / > / >= literal`` and non-negated
        ``col BETWEEN lit AND lit`` conjuncts over an indexed column,
        combines them into bounds, and returns ``(scan, consumed indices)``
        when the estimated cost beats a sequential scan -- otherwise None.
        """
        from repro.engine.operators.scans import RangeIndexScan

        # column -> [(index of conjunct, low, high, low_inc, high_inc)]
        bounds: dict[str, list[tuple[int, object, object, bool, bool]]] = {}
        for i, conj in pushable:
            entry = None
            if isinstance(conj, ast.BinaryOp) and conj.op in ("<", "<=", ">", ">="):
                for col_side, other, flip in (
                    (conj.left, conj.right, False),
                    (conj.right, conj.left, True),
                ):
                    if (
                        isinstance(col_side, ast.ColumnRef)
                        and isinstance(other, ast.Literal)
                        and other.value is not None
                        and layout.try_resolve(col_side.name, col_side.qualifier)
                        is not None
                    ):
                        op = conj.op
                        if flip:
                            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
                        if op in (">", ">="):
                            entry = (
                                i, col_side.name, other.value, None, op == ">=", True
                            )
                        else:
                            entry = (
                                i, col_side.name, None, other.value, True, op == "<="
                            )
                        break
            elif (
                isinstance(conj, ast.Between)
                and not conj.negated
                and isinstance(conj.operand, ast.ColumnRef)
                and isinstance(conj.low, ast.Literal)
                and isinstance(conj.high, ast.Literal)
                and conj.low.value is not None
                and conj.high.value is not None
                and layout.try_resolve(conj.operand.name, conj.operand.qualifier)
                is not None
            ):
                entry = (
                    i, conj.operand.name, conj.low.value, conj.high.value,
                    True, True,
                )
            if entry is None:
                continue
            i_, col, low, high, low_inc, high_inc = entry
            if table.index_on(col) is None:
                continue
            bounds.setdefault(col.lower(), []).append(
                (i_, low, high, low_inc, high_inc)
            )

        best = None
        for col, entries in bounds.items():
            index = table.index_on(col)
            assert index is not None
            low = high = None
            low_inc = high_inc = True
            used = set()
            from repro.engine.types import sort_key

            for i, lo, hi, li, hi_inc in entries:
                used.add(i)
                if lo is not None and (
                    low is None or sort_key(lo) > sort_key(low)
                ):
                    low, low_inc = lo, li
                if hi is not None and (
                    high is None or sort_key(hi) < sort_key(high)
                ):
                    high, high_inc = hi, hi_inc
            selectivity = sel.range_fraction(col, low, high)
            col_stats = table.stats.column(col) if table.stats else None
            est = costmodel.index_range(
                index,
                float(table.heap.row_count),
                selectivity,
                page_count=table.heap.page_count,
                rows_per_page=self.catalog.page_capacity,
                correlation=col_stats.correlation if col_stats else 0.0,
            )
            if best is None or est.cost < best[0].cost:
                best = (est, index, col, low, high, low_inc, high_inc, used)

        if best is None:
            return None
        est, index, col, low, high, low_inc, high_inc, used = best
        seq_cost = float(table.heap.page_count)
        if est.cost >= seq_cost:
            return None  # a sequential scan is cheaper

        desc_parts = []
        if low is not None:
            desc_parts.append(f"{low!r} {'<=' if low_inc else '<'} {col}")
        if high is not None:
            desc_parts.append(f"{col} {'<=' if high_inc else '<'} {high!r}")
        scan = RangeIndexScan(
            table,
            binding,
            index,
            account,
            low=(lambda env, v=low: v) if low is not None else None,
            high=(lambda env, v=high: v) if high is not None else None,
            low_inclusive=low_inc,
            high_inclusive=high_inc,
            bounds_description=" and ".join(desc_parts),
        )
        scan.est_cost, scan.est_rows = est.cost, est.rows
        return scan, used

    def _conjunct_selectivity(
        self, conjunct: ast.Expr, table: Table, layout: Layout
    ) -> float:
        """Selectivity estimate for a single-table conjunct."""
        sel = Selectivity(table.stats)
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op in (
            "=", "<", "<=", ">", ">=", "<>",
        ):
            for col_side, other in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if isinstance(col_side, ast.ColumnRef) and isinstance(
                    other, ast.Literal
                ):
                    if layout.try_resolve(col_side.name, col_side.qualifier) is None:
                        continue
                    if conjunct.op == "=":
                        return sel.equality(col_side.name)
                    if conjunct.op == "<>":
                        return 1.0 - sel.equality(col_side.name)
                    op = conjunct.op
                    if col_side is conjunct.right:
                        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
                    return sel.inequality(col_side.name, op, other.value)
            if conjunct.op == "=":
                return 0.1
        if isinstance(conjunct, ast.Between) and isinstance(
            conjunct.operand, ast.ColumnRef
        ):
            if (
                isinstance(conjunct.low, ast.Literal)
                and isinstance(conjunct.high, ast.Literal)
                and layout.try_resolve(
                    conjunct.operand.name, conjunct.operand.qualifier
                )
                is not None
            ):
                frac = sel.range_fraction(
                    conjunct.operand.name, conjunct.low.value, conjunct.high.value
                )
                return 1.0 - frac if conjunct.negated else frac
        if isinstance(conjunct, ast.IsNull):
            return 0.05 if not conjunct.negated else 0.95
        return DEFAULT_RANGE_SELECTIVITY

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def _plan_join(
        self,
        left: Operator,
        left_layout: Layout,
        right: Operator,
        right_layout: Layout,
        join_cond: Optional[ast.Expr],
        join_kind: str,
        conjuncts: list[ast.Expr],
        consumed: set[int],
        outer_ctx: Optional[BindContext],
        compile_subquery,
    ) -> tuple[Operator, Layout]:
        merged = left_layout.merge(right_layout)
        merged_ctx = BindContext(
            merged, outer=outer_ctx, subquery_compiler=compile_subquery
        )

        # Candidate equi-join conditions: the explicit ON plus (for inner
        # joins only) any WHERE conjunct bridging the two sides.
        candidates: list[ast.Expr] = []
        residual: list[ast.Expr] = []
        if join_cond is not None:
            for part in _split_conjuncts(join_cond):
                candidates.append(part)
        if join_kind != "LEFT":
            for i, conj in enumerate(conjuncts):
                if i in consumed or _contains_subquery(conj):
                    continue
                refs = _collect_column_refs(conj)
                if not refs:
                    continue
                sides = {
                    "left" if left_layout.try_resolve(r.name, r.qualifier) is not None
                    else "right" if right_layout.try_resolve(r.name, r.qualifier) is not None
                    else "other"
                    for r in refs
                }
                if sides == {"left", "right"}:
                    candidates.append(conj)
                    consumed.add(i)

        hash_keys = None
        for cand in list(candidates):
            keys = _match_equi_join(cand, left_layout, right_layout)
            if keys is not None and hash_keys is None:
                hash_keys = keys
                candidates.remove(cand)
            # others stay as residual filters
        residual = candidates

        left_est = costmodel.Estimate(left.est_cost, left.est_rows)
        right_est = costmodel.Estimate(right.est_cost, right.est_rows)

        left_outer = join_kind == "LEFT"
        if hash_keys is not None and join_kind != "CROSS":
            left_key_ast, right_key_ast = hash_keys
            left_ctx = BindContext(
                left_layout, outer=outer_ctx, subquery_compiler=compile_subquery
            )
            right_ctx = BindContext(
                right_layout, outer=outer_ctx, subquery_compiler=compile_subquery
            )
            probe_key = bind_expr(left_key_ast, left_ctx)
            build_key = bind_expr(right_key_ast, right_ctx)
            residual_bound = None
            if left_outer and residual:
                # ON-clause residuals decide matching *inside* an outer join.
                residual_bound = bind_expr(_conjoin(residual), merged_ctx)
                residual = []
            plan: Operator = HashJoin(
                left,
                right,
                probe_key,
                build_key,
                rows_per_page=self.catalog.page_capacity,
                label=_expr_label(
                    ast.BinaryOp("=", left_key_ast, right_key_ast)
                ),
                left_outer=left_outer,
                residual=residual_bound,
            )
            sel = 1.0 / max(left_est.rows, right_est.rows, 1.0)
            est = costmodel.hash_join(
                left_est, right_est, sel, self.catalog.page_capacity
            )
            rows = max(est.rows, left_est.rows) if left_outer else est.rows
            plan.est_cost, plan.est_rows = est.cost, rows
        else:
            inner = Materialize(right, rows_per_page=self.catalog.page_capacity)
            mat_est = costmodel.materialize(right_est, self.catalog.page_capacity)
            inner.est_cost, inner.est_rows = mat_est.cost, mat_est.rows
            condition = None
            if residual:
                condition = bind_expr(_conjoin(residual), merged_ctx)
            plan = NestedLoopJoin(
                left,
                inner,
                condition,
                label="" if condition is None else "on residual",
                left_outer=left_outer,
            )
            sel = DEFAULT_RANGE_SELECTIVITY if condition is not None else 1.0
            est = costmodel.nested_loop_join(left_est, mat_est, sel)
            rows = max(est.rows, left_est.rows) if left_outer else est.rows
            plan.est_cost, plan.est_rows = est.cost, rows
            residual = []

        for cond in residual:
            predicate = bind_expr(cond, merged_ctx)
            child = plan
            plan = Filter(child, predicate, label=_expr_label(cond))
            est = costmodel.filter_rows(
                costmodel.Estimate(child.est_cost, child.est_rows),
                DEFAULT_RANGE_SELECTIVITY,
            )
            plan.est_cost, plan.est_rows = est.cost, est.rows

        return plan, merged

    # ------------------------------------------------------------------
    # Filters with subquery-aware costing
    # ------------------------------------------------------------------

    def _bind_checked(
        self,
        expr: ast.Expr,
        ctx: BindContext,
        subqueries: list[_SubqueryRecord],
    ) -> BoundExpr:
        return bind_expr(expr, ctx)

    def _drain_subquery_cost(
        self, subqueries: list[_SubqueryRecord]
    ) -> tuple[float, float]:
        """Clear pending subquery records; return (per-row, one-time) cost.

        Correlated subqueries charge their estimated cost once per outer
        row; uncorrelated init-plans charge once per query.
        """
        per_row = sum(r.root.est_cost for r in subqueries if r.correlated)
        one_time = sum(r.root.est_cost for r in subqueries if not r.correlated)
        subqueries.clear()
        return per_row, one_time

    def _apply_filter(
        self,
        plan: Operator,
        conjunct: ast.Expr,
        ctx: BindContext,
        subqueries: list[_SubqueryRecord],
        label: str,
    ) -> Operator:
        subqueries.clear()
        predicate = bind_expr(conjunct, ctx)
        per_row_cost, one_time_cost = self._drain_subquery_cost(subqueries)
        child = plan
        plan = Filter(child, predicate, label=f"{label}: {_expr_label(conjunct)}")
        child_est = costmodel.Estimate(child.est_cost, child.est_rows)
        if per_row_cost > 0:
            est = costmodel.subquery_filter(
                child_est, per_row_cost, DEFAULT_RANGE_SELECTIVITY
            )
        else:
            est = costmodel.filter_rows(child_est, DEFAULT_RANGE_SELECTIVITY)
        plan.est_cost, plan.est_rows = est.cost + one_time_cost, est.rows
        return plan

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _plan_aggregate(
        self,
        plan: Operator,
        select: ast.Select,
        select_items: tuple[ast.SelectItem, ...],
        from_ctx: BindContext,
        subqueries: list[_SubqueryRecord],
    ) -> tuple[Operator, BindContext]:
        """Build the HashAggregate; sets ``self._agg_rewrites``."""
        agg_calls: list[ast.FunctionCall] = []
        for item in select_items:
            _collect_aggregates(item.expr, agg_calls)
        if select.having is not None:
            _collect_aggregates(select.having, agg_calls)
        for o in select.order_by:
            _collect_aggregates(o.expr, agg_calls)

        group_exprs = list(select.group_by)
        rewrites: dict[ast.Expr, ast.ColumnRef] = {}
        slots: list[ColumnSlot] = []
        bound_groups: list[BoundExpr] = []
        for i, g in enumerate(group_exprs):
            if isinstance(g, ast.ColumnRef):
                slot = ColumnSlot(g.qualifier, g.name)
            else:
                slot = ColumnSlot(AGG_QUALIFIER, f"__grp{i}")
                rewrites[g] = ast.ColumnRef(name=f"__grp{i}", qualifier=AGG_QUALIFIER)
            slots.append(slot)
            bound_groups.append(bind_expr(g, from_ctx))

        specs: list[AggSpec] = []
        for i, call in enumerate(agg_calls):
            name = f"__agg{i}"
            rewrites[call] = ast.ColumnRef(name=name, qualifier=AGG_QUALIFIER)
            slots.append(ColumnSlot(AGG_QUALIFIER, name))
            if call.star:
                specs.append(AggSpec(func=call.name, arg=None))
            else:
                if len(call.args) != 1:
                    raise PlanError(
                        f"{call.name} takes exactly one argument"
                    )
                if ast.contains_aggregate(call.args[0]):
                    raise PlanError("aggregates cannot be nested")
                specs.append(
                    AggSpec(
                        func=call.name,
                        arg=bind_expr(call.args[0], from_ctx),
                        distinct=call.distinct,
                    )
                )

        per_row_cost, one_time_cost = self._drain_subquery_cost(subqueries)
        child = plan
        layout = Layout(slots)
        plan = HashAggregate(child, bound_groups, specs, layout)
        group_count = self._estimate_groups(group_exprs, from_ctx)
        est = costmodel.aggregate(
            costmodel.Estimate(
                child.est_cost + child.est_rows * per_row_cost + one_time_cost,
                child.est_rows,
            ),
            group_count if group_exprs else None,
        )
        plan.est_cost, plan.est_rows = est.cost, est.rows

        self._agg_rewrites = rewrites
        post_ctx = BindContext(
            layout,
            outer=from_ctx.outer,
            subquery_compiler=from_ctx.subquery_compiler,
        )
        return plan, post_ctx

    def _estimate_groups(
        self, group_exprs: list[ast.Expr], ctx: BindContext
    ) -> float:
        """Crude distinct-group estimate (product of column distincts)."""
        if not group_exprs:
            return 1.0
        total = 1.0
        for g in group_exprs:
            if isinstance(g, ast.ColumnRef):
                distinct = self._column_distinct(g, ctx)
                total *= distinct if distinct else 10.0
            else:
                total *= 10.0
        return total

    def _column_distinct(
        self, ref: ast.ColumnRef, ctx: BindContext
    ) -> Optional[float]:
        for table in self.catalog.tables():
            if table.stats and table.schema.has_column(ref.name):
                cs = table.stats.column(ref.name)
                if cs:
                    return float(cs.distinct_count)
        return None


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Break a WHERE clause into top-level AND conjuncts."""
    return ast.split_conjuncts(expr)


def _conjoin(conjuncts: Sequence[ast.Expr]) -> ast.Expr:
    return ast.conjoin(conjuncts)


def _flatten_from_item(item) -> list[tuple[object, Optional[ast.Expr], str]]:
    """Left-deep flattening of a FROM item into (table, on-cond, kind)."""
    if isinstance(item, (ast.TableRef, ast.DerivedTable)):
        return [(item, None, "INNER")]
    if isinstance(item, ast.Join):
        left = _flatten_from_item(item.left)
        return left + [(item.right, item.condition, item.kind)]
    raise PlanError(f"unsupported FROM item {item!r}")


def _collect_column_refs(expr: ast.Expr) -> list[ast.ColumnRef]:
    """All column references in *expr*, not descending into subqueries."""
    return ast.collect_column_refs(expr)


def _contains_subquery(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.ScalarSubquery, ast.ExistsSubquery, ast.InSubquery)):
        return True
    if isinstance(expr, ast.BinaryOp):
        return _contains_subquery(expr.left) or _contains_subquery(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_subquery(expr.operand)
    if isinstance(expr, ast.FunctionCall):
        return any(_contains_subquery(a) for a in expr.args)
    if isinstance(expr, ast.IsNull):
        return _contains_subquery(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_subquery(expr.operand) or any(
            _contains_subquery(i) for i in expr.items
        )
    if isinstance(expr, ast.Between):
        return any(
            _contains_subquery(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, ast.Like):
        return _contains_subquery(expr.operand)
    if isinstance(expr, ast.Case):
        parts = [e for pair in expr.whens for e in pair]
        if expr.else_ is not None:
            parts.append(expr.else_)
        return any(_contains_subquery(p) for p in parts)
    return False


def _resolves_in_outer(
    ref: ast.ColumnRef, outer_ctx: Optional[BindContext]
) -> bool:
    ctx = outer_ctx
    while ctx is not None:
        if ctx.layout.try_resolve(ref.name, ref.qualifier) is not None:
            return True
        ctx = ctx.outer
    return False


def _match_equi_join(
    cond: ast.Expr, left: Layout, right: Layout
) -> Optional[tuple[ast.Expr, ast.Expr]]:
    """If *cond* is ``left_col = right_col``, return (left expr, right expr)."""
    if not isinstance(cond, ast.BinaryOp) or cond.op != "=":
        return None
    a, b = cond.left, cond.right
    refs_a = _collect_column_refs(a)
    refs_b = _collect_column_refs(b)
    if not refs_a or not refs_b:
        return None

    def side_of(refs: list[ast.ColumnRef]) -> Optional[str]:
        sides = set()
        for r in refs:
            if left.try_resolve(r.name, r.qualifier) is not None:
                sides.add("left")
            elif right.try_resolve(r.name, r.qualifier) is not None:
                sides.add("right")
            else:
                sides.add("other")
        return sides.pop() if len(sides) == 1 else None

    side_a, side_b = side_of(refs_a), side_of(refs_b)
    if side_a == "left" and side_b == "right":
        return (a, b)
    if side_a == "right" and side_b == "left":
        return (b, a)
    return None


def _collect_aggregates(expr: ast.Expr, out: list[ast.FunctionCall]) -> None:
    """Collect top-level aggregate calls (deduplicated by AST equality)."""
    ast.collect_aggregates(expr, out)


def _rewrite_for_agg(
    expr: ast.Expr, rewrites: dict[ast.Expr, ast.ColumnRef]
) -> ast.Expr:
    """Replace aggregate calls / computed group keys with output refs."""

    def visit(e: ast.Expr) -> Optional[ast.Expr]:
        if e in rewrites:
            return rewrites[e]
        # Subquery operands never reference aggregate output slots.
        if isinstance(e, ast.InSubquery):
            return e
        return None

    return ast.transform_expr(expr, visit)


def _expand_stars(
    items: tuple[ast.SelectItem, ...], layout: Layout
) -> tuple[ast.SelectItem, ...]:
    """Expand ``*`` / ``alias.*`` into explicit column references."""
    out: list[ast.SelectItem] = []
    for item in items:
        if isinstance(item.expr, ast.Star):
            qualifier = item.expr.qualifier
            matched = False
            for slot in layout.slots:
                if qualifier is None or (
                    (slot.qualifier or "").lower() == qualifier.lower()
                ):
                    out.append(
                        ast.SelectItem(
                            expr=ast.ColumnRef(
                                name=slot.name, qualifier=slot.qualifier
                            )
                        )
                    )
                    matched = True
            if not matched:
                raise PlanError(
                    f"no columns match {qualifier + '.' if qualifier else ''}*"
                )
        else:
            out.append(item)
    return tuple(out)


def _output_names(items: tuple[ast.SelectItem, ...]) -> list[str]:
    """Output column names: alias, column name, or a synthesized name."""
    names: list[str] = []
    used: set[str] = set()
    for i, item in enumerate(items):
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ast.ColumnRef):
            name = item.expr.name
        elif isinstance(item.expr, ast.FunctionCall):
            name = item.expr.name.lower()
        else:
            name = f"col{i + 1}"
        base = name
        k = 1
        while name.lower() in used:
            k += 1
            name = f"{base}_{k}"
        used.add(name.lower())
        names.append(name)
    return names


def _match_order_target(
    expr: ast.Expr,
    items: tuple[ast.SelectItem, ...],
    output_names: list[str],
) -> Optional[int]:
    """Match an ORDER BY expr to a select-list slot.

    Accepts an output-column alias, a syntactically identical expression,
    or a 1-based ordinal position (``ORDER BY 2``).
    """
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        position = expr.value
        if not 1 <= position <= len(items):
            raise PlanError(
                f"ORDER BY position {position} is out of range "
                f"(select list has {len(items)} columns)"
            )
        return position - 1
    if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
        for i, name in enumerate(output_names):
            if name.lower() == expr.name.lower():
                return i
    for i, item in enumerate(items):
        if item.expr == expr:
            return i
    return None


def _expr_label(expr: ast.Expr) -> str:
    """Terse human-readable rendering for EXPLAIN output."""
    if isinstance(expr, ast.ColumnRef):
        return str(expr)
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.BinaryOp):
        return f"{_expr_label(expr.left)} {expr.op} {_expr_label(expr.right)}"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op} {_expr_label(expr.operand)}"
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.ExistsSubquery)):
        return "(subquery)"
    return type(expr).__name__
