"""Table schemas: column definitions and row validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.errors import CatalogError, SqlTypeError
from repro.engine.types import SqlType, coerce_value


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns."""

    name: str
    columns: tuple[Column, ...]
    _index: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise CatalogError(f"table {self.name!r} must have at least one column")
        seen = set()
        for i, col in enumerate(self.columns):
            lowered = col.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(lowered)
            self._index[lowered] = i

    @classmethod
    def of(cls, name: str, columns: Sequence[Column]) -> "TableSchema":
        """Build a schema from any column sequence."""
        return cls(name=name, columns=tuple(columns))

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether a column of that (case-insensitive) name exists."""
        return name.lower() in self._index

    def column_position(self, name: str) -> int:
        """Ordinal of *name* in the row tuple.

        Raises
        ------
        CatalogError
            For an unknown column.
        """
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column(self, name: str) -> Column:
        """The :class:`Column` called *name*."""
        return self.columns[self.column_position(name)]

    def validate_row(self, values: Sequence[Any]) -> tuple:
        """Coerce and validate one row for insertion.

        Raises
        ------
        SqlTypeError
            On arity mismatch, type mismatch or NULL in a NOT NULL column.
        """
        if len(values) != len(self.columns):
            raise SqlTypeError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row = []
        for col, value in zip(self.columns, values):
            if value is None and not col.nullable:
                raise SqlTypeError(
                    f"column {col.name!r} of table {self.name!r} is NOT NULL"
                )
            row.append(coerce_value(value, col.sql_type, col.name))
        return tuple(row)
