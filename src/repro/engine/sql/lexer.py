"""SQL tokenizer.

Produces a flat list of :class:`Token`.  Keywords are case-insensitive;
identifiers keep their original spelling (matching is case-insensitive
downstream).  String literals use single quotes with ``''`` escaping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.engine.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "NULL", "IS", "IN", "BETWEEN",
    "LIKE", "EXISTS", "CASE", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC",
    "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "INDEX", "ON", "DROP",
    "JOIN", "INNER", "LEFT", "OUTER", "CROSS", "DISTINCT", "TRUE", "FALSE",
    "PRIMARY", "KEY", "UPDATE", "SET", "DELETE", "UNION", "ALL", "EXPLAIN",
    "ANALYZE",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*; always ends with an EOF token.

    Raises
    ------
    ParseError
        On unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise ParseError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (sql[j + 1].isdigit() or sql[j + 1] in "+-"):
                        seen_exp = True
                        j += 2 if sql[j + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
