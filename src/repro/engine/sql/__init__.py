"""SQL front-end: lexer, AST and recursive-descent parser."""

from repro.engine.sql.parser import parse_statement, parse_statements

__all__ = ["parse_statement", "parse_statements"]
