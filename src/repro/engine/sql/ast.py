"""Abstract syntax trees for SQL statements and expressions.

Expression nodes are shared by the parser, the planner (which binds them to
row layouts) and the evaluator.  Statement nodes are plain dataclasses the
planner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (number, string, boolean or NULL)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference, e.g. ``p.retailprice``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operation: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation: ``NOT x`` or ``-x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A scalar or aggregate function call.

    ``distinct`` only applies to aggregates (``COUNT(DISTINCT x)``).
    """

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class IsNull(Expr):
    """``x IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``x [NOT] IN (e1, e2, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    """``x [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    """``x [NOT] LIKE pattern`` (pattern must be a literal)."""

    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr] = None


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar value (may be correlated)."""

    select: "Select"


@dataclass(frozen=True)
class ExistsSubquery(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``x [NOT] IN (SELECT ...)``."""

    operand: Expr
    select: "Select"
    negated: bool = False


#: Aggregate function names recognised by the planner.
AGGREGATE_FUNCTIONS = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX"})


def contains_aggregate(expr: Expr) -> bool:
    """Whether *expr* contains an aggregate function call (at this level --
    subquery internals do not count)."""
    if isinstance(expr, FunctionCall):
        if expr.name.upper() in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, Between):
        return any(
            contains_aggregate(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Case):
        parts = [e for pair in expr.whens for e in pair]
        if expr.else_ is not None:
            parts.append(expr.else_)
        return any(contains_aggregate(p) for p in parts)
    return False


def collect_column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in *expr*, not descending into subqueries.

    Of the subquery forms only ``InSubquery``'s operand belongs to the
    enclosing scope, so only it is walked.
    """
    out: list[ColumnRef] = []

    def walk(e: Expr) -> None:
        if isinstance(e, ColumnRef):
            out.append(e)
        elif isinstance(e, BinaryOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, UnaryOp):
            walk(e.operand)
        elif isinstance(e, FunctionCall):
            for a in e.args:
                walk(a)
        elif isinstance(e, IsNull):
            walk(e.operand)
        elif isinstance(e, InList):
            walk(e.operand)
            for i in e.items:
                walk(i)
        elif isinstance(e, Between):
            walk(e.operand)
            walk(e.low)
            walk(e.high)
        elif isinstance(e, Like):
            walk(e.operand)
            walk(e.pattern)
        elif isinstance(e, Case):
            for c, v in e.whens:
                walk(c)
                walk(v)
            if e.else_ is not None:
                walk(e.else_)
        elif isinstance(e, InSubquery):
            walk(e.operand)

    walk(expr)
    return out


def collect_aggregates(
    expr: Expr, out: Optional[list[FunctionCall]] = None
) -> list[FunctionCall]:
    """Aggregate calls in *expr*, deduplicated by AST equality.

    Does not descend into an aggregate's own arguments (nesting is the
    planner's error to raise) nor into subquery bodies.
    """
    if out is None:
        out = []
    if isinstance(expr, FunctionCall):
        if expr.name.upper() in AGGREGATE_FUNCTIONS:
            if expr not in out:
                out.append(expr)
            return out
        for a in expr.args:
            collect_aggregates(a, out)
    elif isinstance(expr, BinaryOp):
        collect_aggregates(expr.left, out)
        collect_aggregates(expr.right, out)
    elif isinstance(expr, UnaryOp):
        collect_aggregates(expr.operand, out)
    elif isinstance(expr, IsNull):
        collect_aggregates(expr.operand, out)
    elif isinstance(expr, InList):
        collect_aggregates(expr.operand, out)
        for i in expr.items:
            collect_aggregates(i, out)
    elif isinstance(expr, Between):
        for e in (expr.operand, expr.low, expr.high):
            collect_aggregates(e, out)
    elif isinstance(expr, Like):
        collect_aggregates(expr.operand, out)
    elif isinstance(expr, Case):
        for c, v in expr.whens:
            collect_aggregates(c, out)
            collect_aggregates(v, out)
        if expr.else_ is not None:
            collect_aggregates(expr.else_, out)
    return out


def transform_expr(expr: Expr, visit) -> Expr:
    """Top-down structural rewrite of an expression tree.

    ``visit(node)`` may return a replacement expression -- descent stops
    there -- or ``None`` to rebuild the node from transformed children.
    Subquery bodies are opaque; only ``InSubquery``'s operand (which
    belongs to the enclosing scope) is descended into.
    """
    replacement = visit(expr)
    if replacement is not None:
        return replacement

    def rec(e: Expr) -> Expr:
        return transform_expr(e, visit)

    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, rec(expr.left), rec(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rec(expr.operand))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            name=expr.name,
            args=tuple(rec(a) for a in expr.args),
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, IsNull):
        return IsNull(rec(expr.operand), expr.negated)
    if isinstance(expr, InList):
        return InList(
            rec(expr.operand), tuple(rec(i) for i in expr.items), expr.negated
        )
    if isinstance(expr, Between):
        return Between(
            rec(expr.operand), rec(expr.low), rec(expr.high), expr.negated
        )
    if isinstance(expr, Like):
        return Like(rec(expr.operand), rec(expr.pattern), expr.negated)
    if isinstance(expr, Case):
        return Case(
            whens=tuple((rec(c), rec(v)) for c, v in expr.whens),
            else_=rec(expr.else_) if expr.else_ is not None else None,
        )
    if isinstance(expr, InSubquery):
        return InSubquery(rec(expr.operand), expr.select, expr.negated)
    return expr


def split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Break a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts) -> Optional[Expr]:
    """AND together a sequence of conjuncts (``None`` when empty)."""
    result: Optional[Expr] = None
    for c in conjuncts:
        result = c if result is None else BinaryOp("AND", result, c)
    return result


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable:
    """``FROM (SELECT ...) alias`` -- a subquery used as a table."""

    select: object  # Select | Union
    alias: str

    @property
    def binding(self) -> str:
        """The name this derived table is referred to by."""
        return self.alias


@dataclass(frozen=True)
class Join:
    """An explicit ``A JOIN B ON cond`` (INNER or CROSS)."""

    left: "FromItem"
    right: object  # TableRef | DerivedTable
    condition: Optional[Expr]  # None for CROSS JOIN
    kind: str = "INNER"


FromItem = "TableRef | Join"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A SELECT statement."""

    items: tuple[SelectItem, ...]
    from_items: tuple[object, ...] = ()  # TableRef | Join, comma-separated
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class Union:
    """``SELECT ... UNION [ALL] SELECT ...`` chains.

    ``branches`` holds the member selects; ``all_flags[i]`` records whether
    the joint between branch ``i`` and ``i+1`` was ``UNION ALL``.  A final
    ORDER BY / LIMIT applies to the whole union.
    """

    branches: tuple[Select, ...]
    all_flags: tuple[bool, ...]
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def deduplicate(self) -> bool:
        """True if any joint is a plain UNION (SQL dedups the whole result)."""
        return any(not flag for flag in self.all_flags)


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO table [(cols)] VALUES (...), (...)``."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class ColumnDef:
    """One column definition inside CREATE TABLE."""

    name: str
    type_name: str
    nullable: bool = True


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col type [NOT NULL], ...)``."""

    name: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndex:
    """``CREATE INDEX name ON table (column)``."""

    name: str
    table: str
    column: str


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE name``."""

    name: str


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET col = expr [, ...] [WHERE expr]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE expr]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN <select-or-union>``."""

    statement: object  # Select | Union


@dataclass(frozen=True)
class Analyze:
    """``ANALYZE [table]`` -- collect optimizer statistics."""

    table: Optional[str] = None


Statement = (
    "Select | Union | Insert | CreateTable | CreateIndex | DropTable | "
    "Update | Delete"
)
