"""Recursive-descent SQL parser.

Grammar (simplified):

    statement    := select | insert | create_table | create_index | drop
    select       := SELECT [DISTINCT] items FROM from_list [WHERE expr]
                    [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                    [LIMIT n [OFFSET n]]
    from_list    := from_item ("," from_item)*
    from_item    := table_ref (join_clause)*
    join_clause  := [INNER] JOIN table_ref ON expr | CROSS JOIN table_ref
    expr         := or_expr with standard precedence:
                    OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE
                    < add/sub/|| < mul/div/mod < unary < primary

Expressions support scalar subqueries, EXISTS and IN (SELECT ...).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.errors import ParseError
from repro.engine.sql import ast
from repro.engine.sql.lexer import Token, TokenType, tokenize


def parse_statement(sql: str):
    """Parse one SQL statement; a trailing semicolon is allowed.

    Raises
    ------
    ParseError
        On any syntax error, with the source position.
    """
    statements = parse_statements(sql)
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]


def parse_statements(sql: str) -> list:
    """Parse a semicolon-separated script into statements."""
    parser = _Parser(tokenize(sql))
    return parser.parse_script()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        return self._cur.is_keyword(*names)

    def _accept_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> None:
        if not self._accept_keyword(name):
            raise ParseError(
                f"expected {name}, found {self._describe(self._cur)}",
                self._cur.position,
            )

    def _accept_punct(self, value: str) -> bool:
        if self._cur.type is TokenType.PUNCT and self._cur.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise ParseError(
                f"expected {value!r}, found {self._describe(self._cur)}",
                self._cur.position,
            )

    def _accept_operator(self, *values: str) -> Optional[str]:
        if self._cur.type is TokenType.OPERATOR and self._cur.value in values:
            return self._advance().value
        return None

    #: Keywords that may still be used as table/column/alias names.
    _SOFT_KEYWORDS = frozenset({"TABLE", "INDEX", "KEY", "PRIMARY"})

    def _expect_ident(self, what: str = "identifier") -> str:
        if self._cur.type is TokenType.IDENT:
            return self._advance().value
        if self._cur.type is TokenType.KEYWORD and self._cur.value in self._SOFT_KEYWORDS:
            return self._advance().value.lower()
        raise ParseError(
            f"expected {what}, found {self._describe(self._cur)}",
            self._cur.position,
        )

    @staticmethod
    def _describe(token: Token) -> str:
        if token.type is TokenType.EOF:
            return "end of input"
        return f"{token.value!r}"

    # -- script / statements --------------------------------------------

    def parse_script(self) -> list:
        statements = []
        while True:
            while self._accept_punct(";"):
                pass
            if self._cur.type is TokenType.EOF:
                return statements
            statements.append(self._statement())
            if self._cur.type is not TokenType.EOF:
                self._expect_punct(";")

    def _statement(self):
        if self._check_keyword("SELECT"):
            return self._select_statement()
        if self._check_keyword("INSERT"):
            return self._insert()
        if self._check_keyword("CREATE"):
            return self._create()
        if self._check_keyword("DROP"):
            return self._drop()
        if self._check_keyword("UPDATE"):
            return self._update()
        if self._check_keyword("DELETE"):
            return self._delete()
        if self._accept_keyword("EXPLAIN"):
            if not self._check_keyword("SELECT"):
                raise ParseError(
                    "EXPLAIN supports SELECT statements", self._cur.position
                )
            return ast.Explain(statement=self._select_statement())
        if self._accept_keyword("ANALYZE"):
            table = None
            if self._cur.type is TokenType.IDENT or (
                self._cur.type is TokenType.KEYWORD
                and self._cur.value in self._SOFT_KEYWORDS
            ):
                table = self._expect_ident("table name")
            return ast.Analyze(table=table)
        raise ParseError(
            f"expected a statement, found {self._describe(self._cur)}",
            self._cur.position,
        )

    def _select_statement(self):
        """A SELECT, possibly a UNION [ALL] chain.

        Branch selects may not carry their own ORDER BY / LIMIT; a trailing
        ORDER BY / LIMIT (parsed with the final branch) applies to the
        whole union.
        """
        first = self._select()
        if not self._check_keyword("UNION"):
            return first
        branches = [first]
        all_flags = []
        while self._accept_keyword("UNION"):
            all_flags.append(self._accept_keyword("ALL"))
            branches.append(self._select())
        last = branches[-1]
        for branch in branches[:-1]:
            if branch.order_by or branch.limit is not None or branch.offset is not None:
                raise ParseError(
                    "ORDER BY/LIMIT inside a UNION branch is not supported; "
                    "put them after the final branch"
                )
        order_by, limit, offset = last.order_by, last.limit, last.offset
        branches[-1] = ast.Select(
            items=last.items,
            from_items=last.from_items,
            where=last.where,
            group_by=last.group_by,
            having=last.having,
            order_by=(),
            limit=None,
            offset=None,
            distinct=last.distinct,
        )
        return ast.Union(
            branches=tuple(branches),
            all_flags=tuple(all_flags),
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    # -- SELECT ----------------------------------------------------------

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())

        from_items: tuple = ()
        if self._accept_keyword("FROM"):
            froms = [self._from_item()]
            while self._accept_punct(","):
                froms.append(self._from_item())
            from_items = tuple(froms)

        where = self._expr() if self._accept_keyword("WHERE") else None

        group_by: tuple = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            groups = [self._expr()]
            while self._accept_punct(","):
                groups.append(self._expr())
            group_by = tuple(groups)

        having = self._expr() if self._accept_keyword("HAVING") else None

        order_by: tuple = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = [self._order_item()]
            while self._accept_punct(","):
                orders.append(self._order_item())
            order_by = tuple(orders)

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._int_literal("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._int_literal("OFFSET")

        return ast.Select(
            items=tuple(items),
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _int_literal(self, clause: str) -> int:
        if self._cur.type is not TokenType.NUMBER:
            raise ParseError(
                f"{clause} expects an integer literal", self._cur.position
            )
        text = self._advance().value
        try:
            return int(text)
        except ValueError:
            raise ParseError(
                f"{clause} expects an integer, got {text!r}", self._cur.position
            ) from None

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr_or_star()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _expr_or_star(self) -> ast.Expr:
        if self._accept_operator("*"):
            return ast.Star()
        # alias.* form
        if (
            self._cur.type is TokenType.IDENT
            and self._pos + 2 < len(self._tokens)
            and self._tokens[self._pos + 1].value == "."
            and self._tokens[self._pos + 2].value == "*"
        ):
            qualifier = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return ast.Star(qualifier=qualifier)
        return self._expr()

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def _from_item(self):
        item: object = self._table_ref()
        while True:
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                right = self._table_ref()
                item = ast.Join(left=item, right=right, condition=None, kind="CROSS")
                continue
            if self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                right = self._table_ref()
                self._expect_keyword("ON")
                condition = self._expr()
                item = ast.Join(
                    left=item, right=right, condition=condition, kind="LEFT"
                )
                continue
            inner = self._accept_keyword("INNER")
            if self._accept_keyword("JOIN"):
                right = self._table_ref()
                self._expect_keyword("ON")
                condition = self._expr()
                item = ast.Join(
                    left=item, right=right, condition=condition, kind="INNER"
                )
                continue
            if inner:
                raise ParseError("expected JOIN after INNER", self._cur.position)
            return item

    def _table_ref(self):
        if self._accept_punct("("):
            if not self._check_keyword("SELECT"):
                raise ParseError(
                    "expected SELECT in derived table", self._cur.position
                )
            select = self._select_statement()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_ident("derived-table alias")
            return ast.DerivedTable(select=select, alias=alias)
        name = self._expect_ident("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- INSERT / CREATE / DROP ------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident("table name")
        columns: tuple[str, ...] = ()
        if self._accept_punct("("):
            cols = [self._expect_ident("column name")]
            while self._accept_punct(","):
                cols.append(self._expect_ident("column name"))
            self._expect_punct(")")
            columns = tuple(cols)
        self._expect_keyword("VALUES")
        rows = [self._value_row()]
        while self._accept_punct(","):
            rows.append(self._value_row())
        return ast.Insert(table=table, columns=columns, rows=tuple(rows))

    def _value_row(self) -> tuple:
        self._expect_punct("(")
        values = [self._expr()]
        while self._accept_punct(","):
            values.append(self._expr())
        self._expect_punct(")")
        return tuple(values)

    def _create(self):
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            name = self._expect_ident("table name")
            self._expect_punct("(")
            columns = [self._column_def()]
            while self._accept_punct(","):
                columns.append(self._column_def())
            self._expect_punct(")")
            return ast.CreateTable(name=name, columns=tuple(columns))
        if self._accept_keyword("INDEX"):
            name = self._expect_ident("index name")
            self._expect_keyword("ON")
            table = self._expect_ident("table name")
            self._expect_punct("(")
            column = self._expect_ident("column name")
            self._expect_punct(")")
            return ast.CreateIndex(name=name, table=table, column=column)
        raise ParseError(
            "expected TABLE or INDEX after CREATE", self._cur.position
        )

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_ident("column name")
        if self._cur.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise ParseError("expected a column type", self._cur.position)
        type_name = self._advance().value
        # Optional (n) / (p, s) length arguments -- parsed and ignored.
        if self._accept_punct("("):
            self._int_literal("type length")
            if self._accept_punct(","):
                self._int_literal("type scale")
            self._expect_punct(")")
        nullable = True
        if self._accept_keyword("NOT"):
            self._expect_keyword("NULL")
            nullable = False
        elif self._accept_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            nullable = False
        else:
            self._accept_keyword("NULL")
        return ast.ColumnDef(name=name, type_name=type_name, nullable=nullable)

    def _drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTable(name=self._expect_ident("table name"))

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident("table name")
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._expr() if self._accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def _assignment(self) -> tuple:
        column = self._expect_ident("column name")
        if self._accept_operator("=") is None:
            raise ParseError(
                f"expected '=' in SET clause, found {self._describe(self._cur)}",
                self._cur.position,
            )
        return (column, self._expr())

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident("table name")
        where = self._expr() if self._accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    # -- expressions ------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        if self._check_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            select = self._select_statement()
            self._expect_punct(")")
            return ast.ExistsSubquery(select=select)

        left = self._additive()
        negated = False
        if self._check_keyword("NOT"):
            # x NOT IN / NOT BETWEEN / NOT LIKE
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True

        op = self._accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            right = self._additive()
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, right)
        if self._accept_keyword("IS"):
            neg = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=neg)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self._check_keyword("SELECT"):
                select = self._select_statement()
                self._expect_punct(")")
                return ast.InSubquery(operand=left, select=select, negated=negated)
            items = [self._expr()]
            while self._accept_punct(","):
                items.append(self._expr())
            self._expect_punct(")")
            return ast.InList(operand=left, items=tuple(items), negated=negated)
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._additive()
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        if negated:
            raise ParseError(
                "expected IN, BETWEEN or LIKE after NOT", self._cur.position
            )
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._unary())

    def _unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._cur
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("CASE"):
            return self._case()
        if self._accept_punct("("):
            if self._check_keyword("SELECT"):
                select = self._select_statement()
                self._expect_punct(")")
                return ast.ScalarSubquery(select=select)
            expr = self._expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self._advance().value
            if self._accept_punct("("):
                return self._function_call(name)
            if self._accept_punct("."):
                column = self._expect_ident("column name")
                return ast.ColumnRef(name=column, qualifier=name)
            return ast.ColumnRef(name=name)
        raise ParseError(
            f"expected an expression, found {self._describe(token)}",
            token.position,
        )

    def _case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        whens = []
        while self._accept_keyword("WHEN"):
            cond = self._expr()
            self._expect_keyword("THEN")
            value = self._expr()
            whens.append((cond, value))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self._cur.position)
        else_ = self._expr() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.Case(whens=tuple(whens), else_=else_)

    def _function_call(self, name: str) -> ast.Expr:
        if self._accept_operator("*"):
            self._expect_punct(")")
            return ast.FunctionCall(name=name.upper(), args=(), star=True)
        if self._accept_punct(")"):
            return ast.FunctionCall(name=name.upper(), args=())
        distinct = self._accept_keyword("DISTINCT")
        args = [self._expr()]
        while self._accept_punct(","):
            args.append(self._expr())
        self._expect_punct(")")
        return ast.FunctionCall(
            name=name.upper(), args=tuple(args), distinct=distinct
        )
