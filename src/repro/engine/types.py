"""SQL value types and coercion rules.

Values are plain Python objects: ``int``, ``float``, ``str``, ``bool`` and
``None`` (SQL NULL).  This module centralises the type lattice, coercion on
insert, and comparison semantics (including three-valued logic helpers used
by the expression evaluator).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.engine.errors import SqlTypeError


class SqlType(enum.Enum):
    """Column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def parse(cls, name: str) -> "SqlType":
        """Resolve a type name (with common aliases) to a :class:`SqlType`."""
        alias = name.strip().upper()
        mapping = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if alias not in mapping:
            raise SqlTypeError(f"unknown SQL type {name!r}")
        return mapping[alias]


def coerce_value(value: Any, sql_type: SqlType, column: str = "?") -> Any:
    """Coerce a Python value to *sql_type* for storage; ``None`` passes through.

    Raises
    ------
    SqlTypeError
        If the value cannot be represented in the column's type.
    """
    if value is None:
        return None
    try:
        if sql_type is SqlType.INTEGER:
            if isinstance(value, bool):
                raise SqlTypeError(
                    f"cannot store BOOLEAN in INTEGER column {column!r}"
                )
            if isinstance(value, float) and not value.is_integer():
                raise SqlTypeError(
                    f"cannot store non-integral {value!r} in INTEGER column {column!r}"
                )
            return int(value)
        if sql_type is SqlType.FLOAT:
            if isinstance(value, bool):
                raise SqlTypeError(f"cannot store BOOLEAN in FLOAT column {column!r}")
            return float(value)
        if sql_type is SqlType.TEXT:
            if not isinstance(value, str):
                raise SqlTypeError(
                    f"cannot store {type(value).__name__} in TEXT column {column!r}"
                )
            return value
        if sql_type is SqlType.BOOLEAN:
            if not isinstance(value, bool):
                raise SqlTypeError(
                    f"cannot store {type(value).__name__} in BOOLEAN column {column!r}"
                )
            return value
    except (TypeError, ValueError) as exc:
        raise SqlTypeError(
            f"cannot store {value!r} in {sql_type.value} column {column!r}"
        ) from exc
    raise SqlTypeError(f"unhandled SQL type {sql_type}")  # pragma: no cover


def is_numeric(value: Any) -> bool:
    """Whether *value* participates in SQL arithmetic."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(left: Any, right: Any) -> int | None:
    """SQL comparison: -1 / 0 / 1, or ``None`` when either side is NULL.

    Numeric types compare cross-type; otherwise both sides must share a
    type.

    Raises
    ------
    SqlTypeError
        On incomparable types (e.g. TEXT vs INTEGER).
    """
    if left is None or right is None:
        return None
    if is_numeric(left) and is_numeric(right):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    raise SqlTypeError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def sort_key(value: Any) -> tuple:
    """Total-order sort key: NULLs first, then by type family, then value."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if is_numeric(value):
        return (2, value)
    return (3, value)
