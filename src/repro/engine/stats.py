"""ANALYZE-style statistics and selectivity estimation.

``analyze_table`` scans a table once and records, per column: row count,
null count, distinct-value count, min/max, and an equi-depth histogram.
``Selectivity`` turns simple predicates into fractions using those
statistics -- the numbers the optimizer's cost model (and hence the PI's
initial estimate) is built from.  Like any real optimizer, the estimates
are deliberately *approximate*: that imprecision is what the progress
tracker has to correct at run time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine.types import is_numeric, sort_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.catalog import Table

#: Number of equi-depth histogram buckets per column.
HISTOGRAM_BUCKETS = 20

#: Default selectivity guesses when statistics cannot answer.
DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 0.33


@dataclass
class ColumnStats:
    """Statistics for one column."""

    null_count: int = 0
    distinct_count: int = 0
    min_value: Any = None
    max_value: Any = None
    #: Equi-depth bucket boundaries (sorted non-null sample values).
    histogram: list = field(default_factory=list)
    #: Correlation between value order and physical row order, in [-1, 1]
    #: (PostgreSQL's ``pg_stats.correlation``).  |1| = perfectly clustered.
    correlation: float = 0.0

    def null_fraction(self, row_count: int) -> float:
        """Fraction of NULLs."""
        return self.null_count / row_count if row_count else 0.0


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int
    page_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: Rows per heap page at ANALYZE time (0 when unknown, e.g. synthetic
    #: stats): lets benchmarks confirm which capacity a sweep point ran at.
    page_capacity: int = 0

    def column(self, name: str) -> ColumnStats | None:
        """Stats of one column, if collected."""
        return self.columns.get(name.lower())


def analyze_table(table: "Table") -> TableStats:
    """Collect full statistics for *table* (a sequential scan)."""
    schema = table.schema
    row_count = table.heap.row_count
    stats = TableStats(
        row_count=row_count,
        page_count=table.heap.page_count,
        page_capacity=table.heap.page_capacity,
    )

    values: list[list] = [[] for _ in schema.columns]
    nulls = [0] * len(schema.columns)
    for _, page in table.heap.scan_pages():
        for i, column in enumerate(page.columns or ()):
            acc = values[i]
            if not column.has_null:
                acc.extend(column)
                continue
            for v in column:
                if v is None:
                    nulls[i] += 1
                else:
                    acc.append(v)

    for i, col in enumerate(schema.columns):
        in_order = values[i]
        non_null = sorted(in_order, key=sort_key)
        distinct = len(set(non_null))
        cs = ColumnStats(
            null_count=nulls[i],
            distinct_count=distinct,
            min_value=non_null[0] if non_null else None,
            max_value=non_null[-1] if non_null else None,
            histogram=_equi_depth(non_null, HISTOGRAM_BUCKETS),
            correlation=_order_correlation(in_order),
        )
        stats.columns[col.name.lower()] = cs
    table.stats = stats
    return stats


def _order_correlation(values_in_physical_order: list) -> float:
    """Pearson correlation between value rank and physical position.

    ``1.0`` means the column is perfectly clustered (values ascend with the
    heap), ``-1.0`` perfectly descending, ``0.0`` uncorrelated.  Ties get
    their average rank.
    """
    n = len(values_in_physical_order)
    if n < 2:
        return 0.0
    order = sorted(range(n), key=lambda i: sort_key(values_in_physical_order[i]))
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while (
            j + 1 < n
            and sort_key(values_in_physical_order[order[j + 1]])
            == sort_key(values_in_physical_order[order[i]])
        ):
            j += 1
        avg_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    mean_pos = (n - 1) / 2.0
    cov = var_pos = var_rank = 0.0
    for pos in range(n):
        dp = pos - mean_pos
        dr = ranks[pos] - mean_pos
        cov += dp * dr
        var_pos += dp * dp
        var_rank += dr * dr
    if var_pos <= 0 or var_rank <= 0:
        return 0.0
    return cov / (var_pos * var_rank) ** 0.5


def _equi_depth(sorted_values: list, buckets: int) -> list:
    """Bucket boundaries: ``buckets + 1`` values splitting equal counts."""
    n = len(sorted_values)
    if n == 0:
        return []
    if n <= buckets:
        return list(sorted_values)
    bounds = [sorted_values[0]]
    for b in range(1, buckets):
        bounds.append(sorted_values[(b * n) // buckets])
    bounds.append(sorted_values[-1])
    return bounds


class Selectivity:
    """Predicate selectivity estimation from column statistics."""

    def __init__(self, stats: TableStats | None) -> None:
        self._stats = stats

    def equality(self, column: str) -> float:
        """Selectivity of ``col = constant``: ``1 / distinct``."""
        cs = self._stats.column(column) if self._stats else None
        if cs is None or cs.distinct_count == 0:
            return DEFAULT_EQ_SELECTIVITY
        non_null = 1.0 - cs.null_fraction(self._stats.row_count)
        return max(non_null / cs.distinct_count, 1e-9)

    def range_fraction(
        self, column: str, low: Any = None, high: Any = None
    ) -> float:
        """Selectivity of ``low <= col <= high`` via the histogram."""
        cs = self._stats.column(column) if self._stats else None
        if cs is None or not cs.histogram:
            return DEFAULT_RANGE_SELECTIVITY
        hist = cs.histogram
        lo_pos = 0.0 if low is None else _position(hist, low)
        hi_pos = 1.0 if high is None else _position(hist, high)
        frac = max(hi_pos - lo_pos, 0.0)
        non_null = 1.0 - cs.null_fraction(self._stats.row_count)
        return min(max(frac * non_null, 1e-9), 1.0)

    def inequality(self, column: str, op: str, value: Any) -> float:
        """Selectivity of ``col <op> value`` for <, <=, >, >=."""
        if op in ("<", "<="):
            return self.range_fraction(column, low=None, high=value)
        if op in (">", ">="):
            return self.range_fraction(column, low=value, high=None)
        raise ValueError(f"not an inequality operator: {op!r}")

    def distinct(self, column: str) -> int | None:
        """Distinct count of a column, if known."""
        cs = self._stats.column(column) if self._stats else None
        return cs.distinct_count if cs else None


def _position(histogram: list, value: Any) -> float:
    """Fractional rank of *value* within the histogram bounds (0..1)."""
    if not is_numeric(value) and not isinstance(value, str):
        return 0.5
    keys = [sort_key(v) for v in histogram]
    idx = bisect.bisect_right(keys, sort_key(value))
    if idx <= 0:
        return 0.0
    if idx >= len(keys):
        return 1.0
    # Linear interpolation inside the bucket when numeric.
    prev, nxt = histogram[idx - 1], histogram[idx]
    base = (idx - 1) / (len(keys) - 1)
    span = 1.0 / (len(keys) - 1)
    if is_numeric(value) and is_numeric(prev) and is_numeric(nxt) and nxt != prev:
        return base + span * (value - prev) / (nxt - prev)
    return base
