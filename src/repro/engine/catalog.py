"""The system catalog: tables, indexes, and their statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.engine.errors import CatalogError
from repro.engine.index import BTreeIndex
from repro.engine.schema import TableSchema
from repro.engine.stats import TableStats
from repro.engine.storage import DEFAULT_PAGE_CAPACITY, RID, HeapFile


@dataclass
class Table:
    """One stored table: schema, heap file, indexes, statistics."""

    schema: TableSchema
    heap: HeapFile
    indexes: dict[str, BTreeIndex] = field(default_factory=dict)
    stats: TableStats | None = None
    #: Catalog mutation hook (bumps the stats epoch); None for detached
    #: tables built outside a catalog.
    on_mutation: Any = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        """Table name."""
        return self.schema.name

    def insert(self, values: Sequence[Any]) -> RID:
        """Validate, store and index one row."""
        row = self.schema.validate_row(values)
        rid = self.heap.append(row)
        for index in self.indexes.values():
            pos = self.schema.column_position(index.column)
            index.insert(row[pos], rid)
        self.stats = None  # stored stats are stale now
        if self.on_mutation is not None:
            self.on_mutation()
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns the count inserted."""
        n = 0
        for values in rows:
            self.insert(values)
            n += 1
        return n

    def index_on(self, column: str) -> BTreeIndex | None:
        """The index covering *column*, if any."""
        target = column.lower()
        for index in self.indexes.values():
            if index.column.lower() == target:
                return index
        return None


class Catalog:
    """All tables and indexes of one database."""

    def __init__(self, page_capacity: int = DEFAULT_PAGE_CAPACITY) -> None:
        if page_capacity < 1:
            raise CatalogError("page_capacity must be >= 1")
        self.page_capacity = page_capacity
        self._tables: dict[str, Table] = {}
        #: Monotonic counter bumped on any schema or data mutation; plan
        #: caches key on it so stale plans are never replayed.
        self.stats_epoch = 0

    def bump_stats_epoch(self) -> None:
        """Invalidate cached plans: a table, index, or row set changed."""
        self.stats_epoch += 1

    def create_table(
        self, schema: TableSchema, page_capacity: int | None = None
    ) -> Table:
        """Register a new table.

        *page_capacity* overrides the catalog-wide default for this table
        (benchmarks sweep page sizes per table without rebuilding the
        database).

        Raises
        ------
        CatalogError
            If a table of that name already exists or the capacity is
            invalid.
        """
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        if page_capacity is not None and page_capacity < 1:
            raise CatalogError("page_capacity must be >= 1")
        table = Table(
            schema=schema,
            heap=HeapFile(page_capacity or self.page_capacity),
            on_mutation=self.bump_stats_epoch,
        )
        self._tables[key] = table
        self.bump_stats_epoch()
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and its indexes.

        Raises
        ------
        CatalogError
            For an unknown table.
        """
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[key]
        self.bump_stats_epoch()

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name.

        Raises
        ------
        CatalogError
            For an unknown table.
        """
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether *name* exists."""
        return name.lower() in self._tables

    def tables(self) -> list[Table]:
        """All tables, in creation order."""
        return list(self._tables.values())

    def create_index(self, name: str, table_name: str, column: str) -> BTreeIndex:
        """Create (and backfill) an index on one column.

        Raises
        ------
        CatalogError
            For unknown table/column or a duplicate index name.
        """
        table = self.table(table_name)
        if not table.schema.has_column(column):
            raise CatalogError(f"no column {column!r} in table {table_name!r}")
        key = name.lower()
        for t in self._tables.values():
            if key in t.indexes:
                raise CatalogError(f"index {name!r} already exists")
        index = BTreeIndex(name=name, table=table.name, column=column)
        pos = table.schema.column_position(column)
        for rid, row in table.heap.scan_rows():
            index.insert(row[pos], rid)
        table.indexes[key] = index
        self.bump_stats_epoch()
        return index
