"""Per-query memory governance for buffering operators.

The engine models memory the way it models I/O: in abstract units, here
*buffered rows*.  A :class:`MemoryGovernor` is attached to a query's
:class:`~repro.engine.operators.base.WorkAccount` and charged by every
operator that holds rows (sort buffers, hash-join build tables, aggregate
groups, materializations).  Exceeding the soft budget does not kill the
query -- operators degrade gracefully first:

* ``Sort`` falls back to bounded external-merge behaviour (budget-sized
  sorted runs merged at emit time),
* ``HashJoin`` falls back to a modeled block-partitioned join (extra
  partition passes charged as work),
* ``HashAggregate`` spills group partials (extra re-aggregation passes
  charged as work).

Only the hard limit (``budget * hard_limit_factor``) aborts the query,
with :class:`~repro.engine.errors.MemoryBudgetExceeded` -- the end of the
degradation ladder, reached by operators that cannot shed state (e.g. a
materialized inner that simply will not fit).

Every budget crossing is recorded as a :class:`MemoryPressureEvent`, and
the progress layer surfaces the count so estimators can see *why* a query
slowed down (degraded operators charge extra work, which inflates the
refined cost estimate exactly like a real spill inflates runtime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryPressureEvent:
    """One memory-governance incident during an execution.

    ``kind`` is machine-readable: ``"degrade"`` (an operator switched to
    its bounded fallback), ``"spill"`` (a degraded operator shed a run or
    partition), or ``"hard-limit"`` (the query was aborted).
    """

    operator: str
    kind: str
    used_rows: int
    budget_rows: int
    detail: str = ""


class MemoryGovernor:
    """Tracks buffered-row usage for one query against a budget.

    Parameters
    ----------
    budget_rows:
        Soft budget: the number of rows a query may buffer before its
        operators must degrade.
    hard_limit_factor:
        Hard limit multiplier: usage above ``budget_rows * factor`` raises
        :class:`~repro.engine.errors.MemoryBudgetExceeded`.
    """

    def __init__(self, budget_rows: int, hard_limit_factor: float = 8.0) -> None:
        if budget_rows < 1:
            raise ValueError(f"budget_rows must be >= 1, got {budget_rows}")
        if not math.isfinite(hard_limit_factor) or hard_limit_factor < 1.0:
            raise ValueError(
                f"hard_limit_factor must be finite and >= 1, got {hard_limit_factor}"
            )
        self.budget_rows = int(budget_rows)
        self.hard_limit_rows = int(math.ceil(budget_rows * hard_limit_factor))
        self.used_rows = 0
        self.peak_rows = 0
        #: Chronological log of budget crossings.
        self.events: list[MemoryPressureEvent] = []

    @property
    def over_budget(self) -> bool:
        """Whether current usage exceeds the soft budget."""
        return self.used_rows > self.budget_rows

    @property
    def pressure_events(self) -> int:
        """Number of pressure incidents recorded so far."""
        return len(self.events)

    def record(self, operator: str, kind: str, detail: str = "") -> None:
        """Append one :class:`MemoryPressureEvent` to the log."""
        self.events.append(
            MemoryPressureEvent(
                operator=operator,
                kind=kind,
                used_rows=self.used_rows,
                budget_rows=self.budget_rows,
                detail=detail,
            )
        )

    def reserve(self, operator: str, rows: int = 1) -> bool:
        """Charge *rows* buffered rows; return True while within budget.

        A ``False`` return tells the operator to degrade (and typically
        :meth:`release` what it sheds).  Usage beyond the hard limit
        raises :class:`MemoryBudgetExceeded` instead -- record a
        ``"hard-limit"`` event and abort the query.
        """
        if rows < 0:
            raise ValueError("cannot reserve negative rows")
        self.used_rows += rows
        if self.used_rows > self.peak_rows:
            self.peak_rows = self.used_rows
        if self.used_rows > self.hard_limit_rows:
            from repro.engine.errors import MemoryBudgetExceeded

            self.record(
                operator, "hard-limit",
                f"{self.used_rows} rows > hard limit {self.hard_limit_rows}",
            )
            raise MemoryBudgetExceeded(
                f"{operator}: {self.used_rows} buffered rows exceed the hard "
                f"memory limit of {self.hard_limit_rows} "
                f"(budget {self.budget_rows})"
            )
        return self.used_rows <= self.budget_rows

    def release(self, rows: int) -> None:
        """Return *rows* previously reserved rows (a spill or teardown)."""
        if rows < 0:
            raise ValueError("cannot release negative rows")
        self.used_rows = max(self.used_rows - rows, 0)
