"""The optimizer's cost model, in U's (pages of work).

These formulas produce the *initial* cost estimates progress indicators
start from (paper Section 2: "the PI initially takes the optimizer's
estimated cost for Q measured in U's").  They are intentionally the same
formulas the runtime operators charge, so estimation error comes from
cardinality/selectivity error -- the realistic failure mode -- rather than
from a mismatched unit system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.index import BTreeIndex


@dataclass(frozen=True)
class Estimate:
    """Cost (U's) and output cardinality of a (sub)plan."""

    cost: float
    rows: float

    def __post_init__(self) -> None:
        if self.cost < 0 or self.rows < 0:
            raise ValueError("estimates must be non-negative")


def seq_scan(page_count: int, row_count: int) -> Estimate:
    """Full scan: one U per page."""
    return Estimate(cost=float(page_count), rows=float(row_count))


def expected_heap_pages(
    matches: float, page_count: int, rows_per_page: int, correlation: float
) -> float:
    """Distinct heap pages touched fetching *matches* rows.

    Interpolates, by squared column/heap correlation (PostgreSQL's
    approach), between the perfectly clustered case
    (``matches / rows_per_page`` consecutive pages) and the unclustered
    Cardenas estimate ``P * (1 - (1 - 1/P)^matches)``.
    """
    if matches <= 0 or page_count <= 0:
        return 0.0
    clustered = max(math.ceil(matches / rows_per_page), 1)
    if page_count == 1:
        uncorrelated = 1.0
    else:
        uncorrelated = page_count * (1.0 - (1.0 - 1.0 / page_count) ** matches)
    c2 = min(correlation * correlation, 1.0)
    return c2 * clustered + (1.0 - c2) * uncorrelated


def index_probe(
    index: BTreeIndex,
    table_rows: float,
    selectivity: float,
    page_count: int = 0,
    rows_per_page: int = 50,
    correlation: float = 0.0,
) -> Estimate:
    """One equality probe: B-tree descent, leaf pages, then heap fetches.

    ``selectivity`` is the expected fraction of the table matching the
    probe.  Heap fetches are costed as distinct pages via
    :func:`expected_heap_pages`; with ``page_count = 0`` (no stats) they
    degrade to one page per row.
    """
    matches = max(table_rows * selectivity, 0.0)
    leaf_pages = max(math.ceil(matches / index.leaf_capacity), 1)
    if page_count > 0:
        heap = expected_heap_pages(matches, page_count, rows_per_page, correlation)
    else:
        heap = matches
    cost = index.height() + (leaf_pages - 1) + heap
    return Estimate(cost=cost, rows=matches)


def index_range(
    index: BTreeIndex,
    table_rows: float,
    selectivity: float,
    page_count: int,
    rows_per_page: int,
    correlation: float,
) -> Estimate:
    """A range scan over an index: descent, leaf chain, heap fetches."""
    matches = max(table_rows * selectivity, 0.0)
    leaf_pages = max(math.ceil(matches / index.leaf_capacity), 1)
    heap = expected_heap_pages(matches, page_count, rows_per_page, correlation)
    return Estimate(cost=index.height() + (leaf_pages - 1) + heap, rows=matches)


def filter_rows(input_est: Estimate, selectivity: float) -> Estimate:
    """Predicate application: free in U's, scales cardinality."""
    sel = min(max(selectivity, 0.0), 1.0)
    return Estimate(cost=input_est.cost, rows=input_est.rows * sel)


def subquery_filter(
    input_est: Estimate, per_row_subquery_cost: float, selectivity: float
) -> Estimate:
    """A filter that runs a correlated subquery per input row.

    This is the paper's workload shape: the dominant cost term is
    ``input_rows * per_row_subquery_cost``.
    """
    sel = min(max(selectivity, 0.0), 1.0)
    return Estimate(
        cost=input_est.cost + input_est.rows * max(per_row_subquery_cost, 0.0),
        rows=input_est.rows * sel,
    )


def materialize(input_est: Estimate, rows_per_page: int) -> Estimate:
    """Spill + one reread of the cached rows."""
    pages = math.ceil(input_est.rows / rows_per_page) if input_est.rows else 0
    return Estimate(cost=input_est.cost + 2.0 * pages, rows=input_est.rows)


def nested_loop_join(
    outer: Estimate, inner_materialized: Estimate, selectivity: float
) -> Estimate:
    """NL join over a materialized inner (replays are free in U's)."""
    sel = min(max(selectivity, 0.0), 1.0)
    return Estimate(
        cost=outer.cost + inner_materialized.cost,
        rows=outer.rows * inner_materialized.rows * sel,
    )


def hash_join(
    probe: Estimate, build: Estimate, selectivity: float, rows_per_page: int
) -> Estimate:
    """Hash join: children plus a build-side spill model."""
    sel = min(max(selectivity, 0.0), 1.0)
    spill = 2.0 * (math.ceil(build.rows / rows_per_page) if build.rows else 0)
    return Estimate(
        cost=probe.cost + build.cost + spill,
        rows=probe.rows * build.rows * sel,
    )


def sort(input_est: Estimate, rows_per_page: int) -> Estimate:
    """External sort model: one write pass plus one read pass."""
    pages = math.ceil(input_est.rows / rows_per_page) if input_est.rows else 0
    return Estimate(cost=input_est.cost + 2.0 * pages, rows=input_est.rows)


def aggregate(input_est: Estimate, group_count: float | None) -> Estimate:
    """Hash aggregation: free in U's, collapses cardinality."""
    if group_count is None:
        rows = 1.0
    else:
        rows = min(max(group_count, 1.0), max(input_est.rows, 1.0))
        if input_est.rows == 0:
            rows = 0.0
    return Estimate(cost=input_est.cost, rows=rows)


def limit(input_est: Estimate, n: int | None, offset: int) -> Estimate:
    """LIMIT caps cardinality (cost model keeps full input cost --
    conservative, since the executor stops early)."""
    rows = input_est.rows
    rows = max(rows - offset, 0.0)
    if n is not None:
        rows = min(rows, float(n))
    return Estimate(cost=input_est.cost, rows=rows)
