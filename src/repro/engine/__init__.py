"""A from-scratch mini SQL engine with a steppable, cost-accounted executor.

This package substitutes for the PostgreSQL prototype the paper instrumented.
It is a real (if small) database engine:

* :mod:`repro.engine.sql` -- lexer, AST and recursive-descent parser for a
  practical SQL subset (SELECT with joins, correlated scalar subqueries,
  aggregates, GROUP BY / HAVING / ORDER BY / LIMIT, INSERT, CREATE TABLE,
  CREATE INDEX).
* :mod:`repro.engine.storage` / :mod:`repro.engine.index` -- page-based heap
  files and simulated B-tree indexes.  **One page of work = one U**, the
  paper's work unit.
* :mod:`repro.engine.stats` / :mod:`repro.engine.cost` -- ANALYZE statistics,
  selectivity estimation and an optimizer cost model in U's.
* :mod:`repro.engine.planner` / :mod:`repro.engine.operators` -- physical
  planning and pull-based iterators that account work as they touch pages.
* :mod:`repro.engine.executor` -- cooperative execution: a query advances in
  work-unit budgets (``step(units)``), which is what lets the simulator
  timeshare many queries and what gives progress indicators their counters.
* :mod:`repro.engine.progress` -- the per-query progress tracker (refined
  remaining cost), the single-query machinery of [11, 12] both PIs build on.
* :mod:`repro.engine.database` -- the user-facing :class:`Database` facade.
* :mod:`repro.engine.mode` -- the execution-mode switch: ``"batch"``
  (vectorized, the default: operators process ~1024-row vectors) or
  ``"row"`` (tuple-at-a-time Volcano iteration, kept as the differential
  oracle).  Both modes produce identical rows and identical work totals.
* :mod:`repro.engine.decorrelate` -- the plan-time subquery-decorrelation
  rewrite (correlated scalar/EXISTS/IN subqueries become grouped LEFT
  joins so they ride the vectorized path), with its own on/off switch.
"""

from repro.engine.cancel import CancellationToken
from repro.engine.database import Database
from repro.engine.decorrelate import (
    decorrelate_select,
    decorrelate_statement,
    default_decorrelation,
    resolve_decorrelation,
    set_default_decorrelation,
    use_decorrelation,
)
from repro.engine.errors import (
    CatalogError,
    EngineError,
    ExecutionError,
    MemoryBudgetExceeded,
    ParseError,
    PlanError,
    QueryCancelled,
    SqlTypeError,
)
from repro.engine.executor import ExecutionCheckpoint, QueryExecution
from repro.engine.memory import MemoryGovernor, MemoryPressureEvent
from repro.engine.mode import (
    DEFAULT_BATCH_SIZE,
    EXECUTION_MODES,
    default_execution_mode,
    resolve_execution_mode,
    set_default_execution_mode,
    use_execution_mode,
)
from repro.engine.schema import Column, TableSchema

__all__ = [
    "CancellationToken",
    "CatalogError",
    "Column",
    "DEFAULT_BATCH_SIZE",
    "Database",
    "EXECUTION_MODES",
    "EngineError",
    "ExecutionCheckpoint",
    "ExecutionError",
    "MemoryBudgetExceeded",
    "MemoryGovernor",
    "MemoryPressureEvent",
    "ParseError",
    "PlanError",
    "QueryCancelled",
    "QueryExecution",
    "SqlTypeError",
    "TableSchema",
    "decorrelate_select",
    "decorrelate_statement",
    "default_decorrelation",
    "default_execution_mode",
    "resolve_decorrelation",
    "resolve_execution_mode",
    "set_default_decorrelation",
    "set_default_execution_mode",
    "use_decorrelation",
    "use_execution_mode",
]
