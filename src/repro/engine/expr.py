"""Expression binding and evaluation.

The planner *binds* AST expressions against a row :class:`Layout`, producing
fast closures that take an :class:`Env` (the current row plus any outer rows
for correlated subqueries) and return a Python value.

Semantics follow SQL: three-valued logic for AND/OR/NOT, NULL propagation
through arithmetic and comparisons, ``LIKE`` with ``%``/``_`` wildcards,
and integer/float arithmetic with true division yielding floats.

Every bound closure also carries a **batch form** as a ``.batch``
attribute: ``fn.batch(rows, outer_env) -> list`` evaluates the expression
over a whole list of row tuples at once, with slot indices resolved at
bind time and no per-row :class:`Env` allocation.  The batch form is
compiled once alongside the row form and preserves SQL semantics exactly,
including *selective* evaluation: AND/OR right-hand sides, CASE branches
and IN-list items are only evaluated on the subset of rows where row mode
would have evaluated them, so data-dependent errors (e.g. a division by
zero in a dead branch) surface identically in both modes.  Expressions
containing subqueries fall back to a row-at-a-time loop over the *same*
bound closure, which keeps subquery compilation (and its cost accounting)
single-shot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.engine.errors import ExecutionError, PlanError, SqlTypeError
from repro.engine.sql import ast
from repro.engine.types import compare_values, is_numeric
from repro.engine.vector import Chunk

# ---------------------------------------------------------------------------
# Row layout and evaluation environment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSlot:
    """One output column of an operator: its binding name and column name."""

    qualifier: Optional[str]
    name: str

    def matches(self, name: str, qualifier: Optional[str]) -> bool:
        """Whether this slot answers to ``[qualifier.]name``."""
        if self.name.lower() != name.lower():
            return False
        if qualifier is None:
            return True
        return (self.qualifier or "").lower() == qualifier.lower()


class Layout:
    """The ordered column slots of rows produced by an operator."""

    def __init__(self, slots: Sequence[ColumnSlot]) -> None:
        self.slots = list(slots)

    @classmethod
    def for_table(cls, binding: str, column_names: Sequence[str]) -> "Layout":
        """Layout of a base-table scan bound as *binding*."""
        return cls([ColumnSlot(binding, name) for name in column_names])

    def __len__(self) -> int:
        return len(self.slots)

    def merge(self, other: "Layout") -> "Layout":
        """Concatenate two layouts (row tuples concatenate likewise)."""
        return Layout(self.slots + other.slots)

    def try_resolve(self, name: str, qualifier: Optional[str]) -> Optional[int]:
        """Slot index of ``[qualifier.]name``, or None if absent.

        Raises
        ------
        PlanError
            If the reference is ambiguous.
        """
        matches = [
            i for i, slot in enumerate(self.slots) if slot.matches(name, qualifier)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            ref = f"{qualifier}.{name}" if qualifier else name
            raise PlanError(f"ambiguous column reference {ref!r}")
        return matches[0]

    def resolve(self, name: str, qualifier: Optional[str]) -> int:
        """Slot index of ``[qualifier.]name``.

        Raises
        ------
        PlanError
            If the column is unknown or ambiguous.
        """
        idx = self.try_resolve(name, qualifier)
        if idx is None:
            ref = f"{qualifier}.{name}" if qualifier else name
            raise PlanError(f"unknown column {ref!r}")
        return idx


class Env:
    """Evaluation environment: the current row, linked to outer rows."""

    __slots__ = ("row", "parent")

    def __init__(self, row: tuple, parent: Optional["Env"] = None) -> None:
        self.row = row
        self.parent = parent

    def ancestor(self, depth: int) -> "Env":
        """The environment *depth* levels up (0 = this one)."""
        env = self
        for _ in range(depth):
            if env.parent is None:
                raise ExecutionError("correlated reference escaped its scope")
            env = env.parent
        return env


#: A bound expression: Env -> value.  Carries a ``.batch`` attribute with
#: the vectorized form (see :func:`batch_eval`).
BoundExpr = Callable[[Env], Any]

#: The batch form of a bound expression: (rows, outer_env) -> list of values,
#: one per input row.
BatchExpr = Callable[[Sequence[tuple], Optional[Env]], list]


def batch_eval(fn: BoundExpr, rows: Sequence[tuple], outer_env: Optional[Env] = None) -> list:
    """Evaluate *fn* over a batch of rows.

    Uses the compiled batch form when present; hand-built closures (plain
    lambdas without a ``.batch`` attribute) fall back to a row loop.
    """
    batch = getattr(fn, "batch", None)
    if batch is not None:
        return batch(rows, outer_env)
    return [fn(Env(row, outer_env)) for row in rows]


def slot_expr(idx: int) -> BoundExpr:
    """A dual-form closure reading row slot *idx*.

    The planner uses this for hidden sort/projection slots so they
    vectorize like ordinary bound column references.
    """

    def fn(env: Env) -> Any:
        return env.row[idx]

    fn.batch = _column_batch(idx)
    fn.slot = idx
    return fn


def _column_batch(idx: int) -> BatchExpr:
    """The batch form of a bare current-row column reference.

    On a columnar :class:`Chunk` this is the stored column itself (zero
    copy when the chunk carries no selection); on a plain list of row
    tuples it gathers the slot per row.
    """

    def _col(rows, outer_env, idx=idx):
        if type(rows) is Chunk:
            return rows.column(idx)
        return [row[idx] for row in rows]

    return _col


def _subset(rows, idxs: list):
    """The rows at (relative) positions *idxs*, staying columnar when
    possible.

    Selective evaluation (AND/OR right sides, CASE branches, IN items)
    re-evaluates sub-expressions on row subsets; narrowing a chunk's
    selection keeps those evaluations on column vectors.
    """
    if type(rows) is Chunk:
        return rows.take(idxs)
    return [rows[i] for i in idxs]


_SUBQUERY_NODES = (ast.ScalarSubquery, ast.ExistsSubquery, ast.InSubquery)


def expr_contains_subquery(expr: ast.Expr) -> bool:
    """Whether *expr* nests a subquery anywhere."""
    if isinstance(expr, _SUBQUERY_NODES):
        return True
    if isinstance(expr, ast.BinaryOp):
        return expr_contains_subquery(expr.left) or expr_contains_subquery(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return expr_contains_subquery(expr.operand)
    if isinstance(expr, ast.FunctionCall):
        return any(expr_contains_subquery(a) for a in expr.args)
    if isinstance(expr, ast.IsNull):
        return expr_contains_subquery(expr.operand)
    if isinstance(expr, ast.InList):
        return expr_contains_subquery(expr.operand) or any(
            expr_contains_subquery(item) for item in expr.items
        )
    if isinstance(expr, ast.Between):
        return any(
            expr_contains_subquery(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, ast.Like):
        return expr_contains_subquery(expr.operand) or expr_contains_subquery(
            expr.pattern
        )
    if isinstance(expr, ast.Case):
        if any(
            expr_contains_subquery(c) or expr_contains_subquery(v)
            for c, v in expr.whens
        ):
            return True
        return expr.else_ is not None and expr_contains_subquery(expr.else_)
    return False


class BindContext:
    """Name-resolution scope for binding expressions.

    ``subquery_compiler`` is provided by the planner: it compiles a nested
    SELECT (in this scope) into a runner ``fn(env) -> list[tuple]``.
    """

    def __init__(
        self,
        layout: Layout,
        outer: Optional["BindContext"] = None,
        subquery_compiler: Optional[
            Callable[[ast.Select, "BindContext"], Callable[[Env], list]]
        ] = None,
    ) -> None:
        self.layout = layout
        self.outer = outer
        self.subquery_compiler = subquery_compiler or (
            outer.subquery_compiler if outer else None
        )

    def resolve(self, name: str, qualifier: Optional[str]) -> tuple[int, int]:
        """Resolve a column to ``(depth, slot index)`` walking outer scopes."""
        depth = 0
        ctx: Optional[BindContext] = self
        while ctx is not None:
            idx = ctx.layout.try_resolve(name, qualifier)
            if idx is not None:
                return depth, idx
            ctx = ctx.outer
            depth += 1
        ref = f"{qualifier}.{name}" if qualifier else name
        raise PlanError(f"unknown column {ref!r}")


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_abs(v):
    return None if v is None else abs(v)


def _fn_round(v, digits=0):
    if v is None:
        return None
    result = round(v, int(digits))
    return result


def _fn_floor(v):
    import math

    return None if v is None else math.floor(v)


def _fn_ceil(v):
    import math

    return None if v is None else math.ceil(v)


def _fn_length(v):
    return None if v is None else len(v)


def _fn_upper(v):
    return None if v is None else v.upper()


def _fn_lower(v):
    return None if v is None else v.lower()


def _fn_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None


def _fn_nullif(a, b):
    return None if a == b else a


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "FLOOR": _fn_floor,
    "CEIL": _fn_ceil,
    "CEILING": _fn_ceil,
    "LENGTH": _fn_length,
    "UPPER": _fn_upper,
    "LOWER": _fn_lower,
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
}


# ---------------------------------------------------------------------------
# Binding
# ---------------------------------------------------------------------------


def bind_expr(expr: ast.Expr, ctx: BindContext) -> BoundExpr:
    """Compile *expr* into a closure over :class:`Env`.

    The returned closure also carries the compiled batch form as a
    ``.batch`` attribute (see module docstring).  Subquery-containing
    expressions get a row-loop batch form over the *same* closure so the
    subquery is compiled (and its cost registered) exactly once.

    Raises
    ------
    PlanError
        On unknown columns/functions or aggregates in a scalar context.
    """
    fn = _bind_row(expr, ctx)
    if expr_contains_subquery(expr):
        fn.batch = _row_loop_batch(fn)
    else:
        fn.batch = _bind_batch(expr, ctx)
    if isinstance(expr, ast.ColumnRef):
        depth, idx = ctx.resolve(expr.name, expr.qualifier)
        if depth == 0:
            # Bare current-row column: operators with tight per-row loops
            # (hash join build/probe, grouped aggregation) index the tuple
            # directly instead of materialising a key column.
            fn.slot = idx
    return fn


def _row_loop_batch(fn: BoundExpr) -> BatchExpr:
    """Batch form that loops the row closure (subquery fallback)."""

    def _loop(rows: Sequence[tuple], outer_env: Optional[Env]) -> list:
        return [fn(Env(row, outer_env)) for row in rows]

    return _loop


def _bind_row(expr: ast.Expr, ctx: BindContext) -> BoundExpr:
    """Compile the row-at-a-time form of *expr*."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda env: value

    if isinstance(expr, ast.ColumnRef):
        depth, idx = ctx.resolve(expr.name, expr.qualifier)
        if depth == 0:
            return lambda env: env.row[idx]
        return lambda env: env.ancestor(depth).row[idx]

    if isinstance(expr, ast.BinaryOp):
        return _bind_binary(expr, ctx)

    if isinstance(expr, ast.UnaryOp):
        operand = _bind_row(expr.operand, ctx)
        if expr.op == "NOT":
            def _not(env, operand=operand):
                v = operand(env)
                if v is None:
                    return None
                _require_bool(v, "NOT")
                return not v

            return _not
        if expr.op == "-":
            def _neg(env, operand=operand):
                v = operand(env)
                if v is None:
                    return None
                if not is_numeric(v):
                    raise SqlTypeError(f"cannot negate {type(v).__name__}")
                return -v

            return _neg
        raise PlanError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, ast.FunctionCall):
        name = expr.name.upper()
        if name in ast.AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"aggregate {name} is not allowed in this context"
            )
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise PlanError(f"unknown function {name!r}")
        args = [_bind_row(a, ctx) for a in expr.args]

        def _call(env, fn=fn, args=args):
            try:
                return fn(*[a(env) for a in args])
            except (TypeError, AttributeError) as exc:
                raise SqlTypeError(f"bad arguments to {name}: {exc}") from exc

        return _call

    if isinstance(expr, ast.IsNull):
        operand = _bind_row(expr.operand, ctx)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None

    if isinstance(expr, ast.InList):
        operand = _bind_row(expr.operand, ctx)
        items = [_bind_row(i, ctx) for i in expr.items]
        negated = expr.negated

        def _in(env, operand=operand, items=items, negated=negated):
            v = operand(env)
            if v is None:
                return None
            saw_null = False
            for item in items:
                w = item(env)
                if w is None:
                    saw_null = True
                    continue
                if compare_values(v, w) == 0:
                    return not negated
            if saw_null:
                return None
            return negated

        return _in

    if isinstance(expr, ast.Between):
        operand = _bind_row(expr.operand, ctx)
        low = _bind_row(expr.low, ctx)
        high = _bind_row(expr.high, ctx)
        negated = expr.negated

        def _between(env):
            v = operand(env)
            lo = low(env)
            hi = high(env)
            c1 = compare_values(v, lo)
            c2 = compare_values(v, hi)
            if c1 is None or c2 is None:
                return None
            result = c1 >= 0 and c2 <= 0
            return (not result) if negated else result

        return _between

    if isinstance(expr, ast.Like):
        operand = _bind_row(expr.operand, ctx)
        pattern = _bind_row(expr.pattern, ctx)
        negated = expr.negated
        cache: dict[str, re.Pattern] = {}

        def _like(env):
            v = operand(env)
            p = pattern(env)
            if v is None or p is None:
                return None
            if not isinstance(v, str) or not isinstance(p, str):
                raise SqlTypeError("LIKE requires text operands")
            rx = cache.get(p)
            if rx is None:
                rx = re.compile(_like_to_regex(p), re.DOTALL)
                cache[p] = rx
            result = rx.fullmatch(v) is not None
            return (not result) if negated else result

        return _like

    if isinstance(expr, ast.Case):
        whens = [(_bind_row(c, ctx), _bind_row(v, ctx)) for c, v in expr.whens]
        else_ = _bind_row(expr.else_, ctx) if expr.else_ is not None else None

        def _case(env):
            for cond, value in whens:
                if cond(env) is True:
                    return value(env)
            return else_(env) if else_ is not None else None

        return _case

    if isinstance(expr, ast.ScalarSubquery):
        if ctx.subquery_compiler is None:
            raise PlanError("subqueries are not allowed in this context")
        runner = ctx.subquery_compiler(expr.select, ctx)

        def _scalar(env):
            rows = runner(env)
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            if len(rows[0]) != 1:
                raise ExecutionError(
                    "scalar subquery must return exactly one column"
                )
            return rows[0][0]

        return _scalar

    if isinstance(expr, ast.ExistsSubquery):
        if ctx.subquery_compiler is None:
            raise PlanError("subqueries are not allowed in this context")
        runner = ctx.subquery_compiler(expr.select, ctx)
        negated = expr.negated

        def _exists(env):
            rows = runner(env)
            return (not rows) if negated else bool(rows)

        return _exists

    if isinstance(expr, ast.InSubquery):
        if ctx.subquery_compiler is None:
            raise PlanError("subqueries are not allowed in this context")
        operand = _bind_row(expr.operand, ctx)
        runner = ctx.subquery_compiler(expr.select, ctx)
        negated = expr.negated
        # For an uncorrelated subquery the row list is computed once per
        # execution (init-plan), so the O(n)-per-outer-row membership
        # scan can be replaced by a hashed probe built once.
        probe_holder: list = [None]

        def _scan(v, rows):
            saw_null = False
            for row in rows:
                if len(row) != 1:
                    raise ExecutionError("IN subquery must return one column")
                w = row[0]
                if w is None:
                    saw_null = True
                elif compare_values(v, w) == 0:
                    return not negated
            if saw_null:
                return None
            return negated

        def _in_subquery(env):
            v = operand(env)
            if v is None:
                return None
            rows = runner(env)
            if getattr(runner, "correlated", True):
                return _scan(v, rows)
            probe = probe_holder[0]
            if probe is None:
                probe = probe_holder[0] = _build_in_probe(
                    rows, negated, _scan
                )
            return probe(v)

        return _in_subquery

    if isinstance(expr, ast.Star):
        raise PlanError("'*' is only allowed at the top of a select list")

    raise PlanError(f"cannot bind expression {expr!r}")


def _value_family(value: Any) -> Optional[str]:
    """The comparison family of a value (bool before int: bools are not
    numeric to ``compare_values``)."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _build_in_probe(rows, negated: bool, scan):
    """An O(1) membership probe over a stable uncorrelated IN subquery.

    Must be observationally identical to the ordered *scan*, including
    errors: the scan raises :class:`SqlTypeError` at the first value
    whose comparison family differs from the probe value's -- unless a
    match occurs earlier -- so the probe tracks, per family, the first
    matching index and the first cross-family clash and only answers
    when the match provably precedes the clash.  NaN defeats hashing
    (``compare_values`` treats it as equal to every number, dict lookup
    as equal to nothing), so any NaN on either side falls back to the
    ordered scan.
    """
    if rows and len(rows[0]) != 1:
        def _bad_arity(v):
            raise ExecutionError("IN subquery must return one column")

        return _bad_arity

    match_index: dict[str, dict] = {"num": {}, "str": {}, "bool": {}}
    first_by_family: dict[str, tuple[int, Any]] = {}
    saw_null = False
    have_nan = False
    for i, row in enumerate(rows):
        w = row[0]
        if w is None:
            saw_null = True
            continue
        family = _value_family(w)
        if family is None:
            have_nan = True  # unknown type: scan decides, per row, in order
            continue
        if family == "num" and w != w:
            have_nan = True
            continue
        if family not in first_by_family:
            first_by_family[family] = (i, w)
        bucket = match_index[family]
        if w not in bucket:
            bucket[w] = i

    def probe(v):
        if have_nan or (isinstance(v, float) and v != v):
            return scan(v, rows)
        family = _value_family(v)
        if family is None:
            return scan(v, rows)
        hit = match_index[family].get(v)
        clash = None
        for other, entry in first_by_family.items():
            if other != family and (clash is None or entry[0] < clash[0]):
                clash = entry
        if hit is not None and (clash is None or hit < clash[0]):
            return not negated
        if clash is not None:
            compare_values(v, clash[1])  # raises exactly like the scan
        if saw_null:
            return None
        return negated

    return probe


def _require_bool(value: Any, where: str) -> None:
    if not isinstance(value, bool):
        raise SqlTypeError(f"{where} requires a boolean, got {type(value).__name__}")


def _bind_binary(expr: ast.BinaryOp, ctx: BindContext) -> BoundExpr:
    op = expr.op
    left = _bind_row(expr.left, ctx)
    right = _bind_row(expr.right, ctx)

    if op == "AND":
        def _and(env):
            l = left(env)
            if l is False:
                return False
            r = right(env)
            if r is False:
                return False
            if l is None or r is None:
                return None
            _require_bool(l, "AND")
            _require_bool(r, "AND")
            return True

        return _and

    if op == "OR":
        def _or(env):
            l = left(env)
            if l is True:
                return True
            r = right(env)
            if r is True:
                return True
            if l is None or r is None:
                return None
            _require_bool(l, "OR")
            _require_bool(r, "OR")
            return False

        return _or

    if op in ("=", "<>", "<", "<=", ">", ">="):
        def _cmp(env, op=op):
            c = compare_values(left(env), right(env))
            if c is None:
                return None
            if op == "=":
                return c == 0
            if op == "<>":
                return c != 0
            if op == "<":
                return c < 0
            if op == "<=":
                return c <= 0
            if op == ">":
                return c > 0
            return c >= 0

        return _cmp

    if op == "||":
        def _concat(env):
            l, r = left(env), right(env)
            if l is None or r is None:
                return None
            if not isinstance(l, str) or not isinstance(r, str):
                raise SqlTypeError("|| requires text operands")
            return l + r

        return _concat

    if op in ("+", "-", "*", "/", "%"):
        def _arith(env, op=op):
            l, r = left(env), right(env)
            if l is None or r is None:
                return None
            if not is_numeric(l) or not is_numeric(r):
                raise SqlTypeError(
                    f"operator {op} requires numeric operands, got "
                    f"{type(l).__name__} and {type(r).__name__}"
                )
            if op == "+":
                return l + r
            if op == "-":
                return l - r
            if op == "*":
                return l * r
            if op == "/":
                if r == 0:
                    raise ExecutionError("division by zero")
                return l / r
            if r == 0:
                raise ExecutionError("modulo by zero")
            return l % r

        return _arith

    raise PlanError(f"unknown binary operator {op!r}")


# ---------------------------------------------------------------------------
# Batch compilation
# ---------------------------------------------------------------------------
#
# The batch compiler mirrors _bind_row case by case.  It is only invoked on
# subquery-free expressions (bind_expr guards), so it never touches the
# subquery compiler.  Selective evaluation keeps error semantics aligned
# with row mode: a sub-expression is evaluated exactly on the rows where
# the row form would have evaluated it.

_CMP_TESTS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def _bind_batch(expr: ast.Expr, ctx: BindContext) -> BatchExpr:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda rows, outer_env: [value] * len(rows)

    if isinstance(expr, ast.ColumnRef):
        depth, idx = ctx.resolve(expr.name, expr.qualifier)
        if depth == 0:
            return _column_batch(idx)

        def _outer_col(rows, outer_env, depth=depth, idx=idx):
            if outer_env is None:
                raise ExecutionError("correlated reference escaped its scope")
            value = outer_env.ancestor(depth - 1).row[idx]
            return [value] * len(rows)

        return _outer_col

    if isinstance(expr, ast.BinaryOp):
        return _bind_batch_binary(expr, ctx)

    if isinstance(expr, ast.UnaryOp):
        operand = _bind_batch(expr.operand, ctx)
        if expr.op == "NOT":
            def _not(rows, outer_env):
                out = []
                for v in operand(rows, outer_env):
                    if v is None:
                        out.append(None)
                    else:
                        _require_bool(v, "NOT")
                        out.append(not v)
                return out

            return _not
        if expr.op == "-":
            def _neg(rows, outer_env):
                out = []
                for v in operand(rows, outer_env):
                    if v is None:
                        out.append(None)
                    elif not is_numeric(v):
                        raise SqlTypeError(f"cannot negate {type(v).__name__}")
                    else:
                        out.append(-v)
                return out

            return _neg
        raise PlanError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, ast.FunctionCall):
        name = expr.name.upper()
        if name in ast.AGGREGATE_FUNCTIONS:
            raise PlanError(f"aggregate {name} is not allowed in this context")
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise PlanError(f"unknown function {name!r}")
        args = [_bind_batch(a, ctx) for a in expr.args]

        def _call(rows, outer_env, fn=fn, args=args, name=name):
            cols = [a(rows, outer_env) for a in args]
            try:
                if not cols:
                    return [fn() for _ in range(len(rows))]
                return [fn(*vals) for vals in zip(*cols)]
            except (TypeError, AttributeError) as exc:
                raise SqlTypeError(f"bad arguments to {name}: {exc}") from exc

        return _call

    if isinstance(expr, ast.IsNull):
        operand = _bind_batch(expr.operand, ctx)
        if expr.negated:
            return lambda rows, outer_env: [
                v is not None for v in operand(rows, outer_env)
            ]
        return lambda rows, outer_env: [v is None for v in operand(rows, outer_env)]

    if isinstance(expr, ast.InList):
        operand = _bind_batch(expr.operand, ctx)
        items = [_bind_batch(i, ctx) for i in expr.items]
        negated = expr.negated

        def _in(rows, outer_env):
            values = operand(rows, outer_env)
            n = len(values)
            out: list = [None] * n
            # NULL operands decide to NULL without evaluating any item.
            pending = [i for i in range(n) if values[i] is not None]
            saw_null = [False] * n
            for item in items:
                if not pending:
                    break
                matches = item(_subset(rows, pending), outer_env)
                still = []
                for w, i in zip(matches, pending):
                    if w is None:
                        saw_null[i] = True
                        still.append(i)
                    elif compare_values(values[i], w) == 0:
                        out[i] = not negated
                    else:
                        still.append(i)
                pending = still
            for i in pending:
                out[i] = None if saw_null[i] else negated
            return out

        return _in

    if isinstance(expr, ast.Between):
        operand = _bind_batch(expr.operand, ctx)
        low = _bind_batch(expr.low, ctx)
        high = _bind_batch(expr.high, ctx)
        negated = expr.negated

        def _between(rows, outer_env):
            values = operand(rows, outer_env)
            lows = low(rows, outer_env)
            highs = high(rows, outer_env)
            out = []
            for v, lo, hi in zip(values, lows, highs):
                c1 = compare_values(v, lo)
                c2 = compare_values(v, hi)
                if c1 is None or c2 is None:
                    out.append(None)
                else:
                    result = c1 >= 0 and c2 <= 0
                    out.append((not result) if negated else result)
            return out

        return _between

    if isinstance(expr, ast.Like):
        operand = _bind_batch(expr.operand, ctx)
        pattern = _bind_batch(expr.pattern, ctx)
        negated = expr.negated
        cache: dict[str, re.Pattern] = {}

        def _like(rows, outer_env):
            values = operand(rows, outer_env)
            patterns = pattern(rows, outer_env)
            out = []
            for v, p in zip(values, patterns):
                if v is None or p is None:
                    out.append(None)
                    continue
                if not isinstance(v, str) or not isinstance(p, str):
                    raise SqlTypeError("LIKE requires text operands")
                rx = cache.get(p)
                if rx is None:
                    rx = re.compile(_like_to_regex(p), re.DOTALL)
                    cache[p] = rx
                result = rx.fullmatch(v) is not None
                out.append((not result) if negated else result)
            return out

        return _like

    if isinstance(expr, ast.Case):
        whens = [
            (_bind_batch(c, ctx), _bind_batch(v, ctx)) for c, v in expr.whens
        ]
        else_ = _bind_batch(expr.else_, ctx) if expr.else_ is not None else None

        def _case(rows, outer_env):
            n = len(rows)
            out: list = [None] * n
            pending = list(range(n))
            for cond, value in whens:
                if not pending:
                    break
                verdicts = cond(_subset(rows, pending), outer_env)
                hits = [i for i, c in zip(pending, verdicts) if c is True]
                if hits:
                    results = value(_subset(rows, hits), outer_env)
                    for i, v in zip(hits, results):
                        out[i] = v
                pending = [i for i, c in zip(pending, verdicts) if c is not True]
            if else_ is not None and pending:
                results = else_(_subset(rows, pending), outer_env)
                for i, v in zip(pending, results):
                    out[i] = v
            return out

        return _case

    if isinstance(expr, ast.Star):
        raise PlanError("'*' is only allowed at the top of a select list")

    raise PlanError(f"cannot bind expression {expr!r}")


def _bind_batch_binary(expr: ast.BinaryOp, ctx: BindContext) -> BatchExpr:
    op = expr.op
    left = _bind_batch(expr.left, ctx)
    right = _bind_batch(expr.right, ctx)

    if op == "AND":
        def _and(rows, outer_env):
            lv = left(rows, outer_env)
            n = len(lv)
            out: list = [False] * n
            pending = [i for i in range(n) if lv[i] is not False]
            if pending:
                rv = right(_subset(rows, pending), outer_env)
                for r, i in zip(rv, pending):
                    if r is False:
                        continue
                    l = lv[i]
                    if l is None or r is None:
                        out[i] = None
                    else:
                        _require_bool(l, "AND")
                        _require_bool(r, "AND")
                        out[i] = True
            return out

        return _and

    if op == "OR":
        def _or(rows, outer_env):
            lv = left(rows, outer_env)
            n = len(lv)
            out: list = [True] * n
            pending = [i for i in range(n) if lv[i] is not True]
            if pending:
                rv = right(_subset(rows, pending), outer_env)
                for r, i in zip(rv, pending):
                    if r is True:
                        continue
                    l = lv[i]
                    if l is None or r is None:
                        out[i] = None
                    else:
                        _require_bool(l, "OR")
                        _require_bool(r, "OR")
                        out[i] = False
            return out

        return _or

    if op in _CMP_TESTS:
        test = _CMP_TESTS[op]

        def _cmp(rows, outer_env):
            lv = left(rows, outer_env)
            rv = right(rows, outer_env)
            return [
                None if (c := compare_values(l, r)) is None else test(c)
                for l, r in zip(lv, rv)
            ]

        return _cmp

    if op == "||":
        def _concat(rows, outer_env):
            lv = left(rows, outer_env)
            rv = right(rows, outer_env)
            out = []
            for l, r in zip(lv, rv):
                if l is None or r is None:
                    out.append(None)
                    continue
                if not isinstance(l, str) or not isinstance(r, str):
                    raise SqlTypeError("|| requires text operands")
                out.append(l + r)
            return out

        return _concat

    if op in ("+", "-", "*", "/", "%"):
        if op == "+":
            apply = lambda l, r: l + r
        elif op == "-":
            apply = lambda l, r: l - r
        elif op == "*":
            apply = lambda l, r: l * r
        elif op == "/":
            def apply(l, r):
                if r == 0:
                    raise ExecutionError("division by zero")
                return l / r
        else:
            def apply(l, r):
                if r == 0:
                    raise ExecutionError("modulo by zero")
                return l % r

        def _arith(rows, outer_env, op=op, apply=apply):
            lv = left(rows, outer_env)
            rv = right(rows, outer_env)
            out = []
            for l, r in zip(lv, rv):
                if l is None or r is None:
                    out.append(None)
                elif not is_numeric(l) or not is_numeric(r):
                    raise SqlTypeError(
                        f"operator {op} requires numeric operands, got "
                        f"{type(l).__name__} and {type(r).__name__}"
                    )
                else:
                    out.append(apply(l, r))
            return out

        return _arith

    raise PlanError(f"unknown binary operator {op!r}")


def _like_to_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern into a regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out)
