"""Declarative fault plans: what goes wrong, when, to whom.

A :class:`FaultPlan` is a validated, immutable script of faults expressed in
virtual time, decoupled from the machinery that applies them (the
:class:`~repro.faults.injector.FaultInjector`).  Plans are plain data so
they can be generated (see :func:`random_fault_plan`), printed, stored in
test fixtures and replayed deterministically.

Four fault shapes cover the failure modes the robustness literature calls
out for progress estimation:

* :class:`QueryCrash` -- a query dies with a runtime error, either at an
  absolute virtual time or when its progress first reaches a fraction.
* :class:`QueryStall` -- a query makes no progress for an interval
  (lock wait, lost I/O) while still holding its slot.
* :class:`Brownout` -- the whole system's processing rate degrades for an
  interval (``factor=0`` is a full outage).
* :class:`StatsCorruption` -- the remaining-cost estimates PIs read turn
  bad for an interval: scaled by a factor, ``NaN`` or ``inf``.
* :class:`ArrivalBurst` (alias :data:`OverloadStorm`) -- load *as* the
  fault: a thundering herd of ``n`` extra arrivals at one instant (or
  jittered over a spread), the shape overload-protection layers defend
  against.

Three *node-scoped* shapes extend the vocabulary to sharded multi-node
clusters (see :mod:`repro.dist`); they target a whole simulated node
rather than one query:

* :class:`NodeCrash` -- a node dies, killing every in-flight sub-query on
  it (the router fails them over to replicas); with ``down_for`` it
  rejoins later.
* :class:`NetworkPartition` -- a node keeps executing but is unreachable:
  the router can neither read its progress nor gather its results until
  the partition heals, so its shards' global-PI contributions go stale.
* :class:`NodeBrownout` -- one node's processing rate degrades for an
  interval (the whole-system counterpart is :class:`Brownout`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence, Union


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class QueryCrash:
    """Kill one query with a runtime error.

    Exactly one trigger must be given: ``at_time`` (absolute virtual
    seconds) or ``at_fraction`` (progress fraction in ``(0, 1]``; fires
    the first time the query's completed work reaches that share of its
    estimated total, to injector-resolution accuracy).
    """

    query_id: str
    at_time: float | None = None
    at_fraction: float | None = None
    reason: str = "injected crash"

    def __post_init__(self) -> None:
        _require(
            (self.at_time is None) != (self.at_fraction is None),
            "QueryCrash needs exactly one of at_time / at_fraction",
        )
        if self.at_time is not None:
            _require(
                math.isfinite(self.at_time) and self.at_time >= 0,
                f"at_time must be finite and >= 0, got {self.at_time}",
            )
        if self.at_fraction is not None:
            _require(
                0.0 < self.at_fraction <= 1.0,
                f"at_fraction must be in (0, 1], got {self.at_fraction}",
            )


@dataclass(frozen=True)
class QueryStall:
    """Freeze one query's progress for ``duration`` seconds from ``at``.

    The query keeps its execution slot (it still counts against the
    multiprogramming limit) but its speed is pinned to zero -- the shape of
    a lock wait or a lost I/O.
    """

    query_id: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        _require(
            math.isfinite(self.at) and self.at >= 0,
            f"at must be finite and >= 0, got {self.at}",
        )
        _require(
            math.isfinite(self.duration) and self.duration > 0,
            f"duration must be finite and > 0, got {self.duration}",
        )


@dataclass(frozen=True)
class Brownout:
    """Scale the whole system's processing rate by ``factor`` for an interval.

    Overlapping brownouts compose multiplicatively.  ``factor=0`` is a full
    outage; the system resumes at nominal capacity when the window closes.
    """

    start: float
    duration: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        _require(
            math.isfinite(self.start) and self.start >= 0,
            f"start must be finite and >= 0, got {self.start}",
        )
        _require(
            math.isfinite(self.duration) and self.duration > 0,
            f"duration must be finite and > 0, got {self.duration}",
        )
        _require(
            math.isfinite(self.factor) and 0.0 <= self.factor <= 1.0,
            f"factor must be in [0, 1], got {self.factor}",
        )


@dataclass(frozen=True)
class StatsCorruption:
    """Corrupt the remaining-cost estimates PIs observe, for an interval.

    ``factor`` multiplies every affected remaining cost as seen through
    system snapshots; it may be ``NaN`` or ``inf`` to model completely
    destroyed statistics (finite factors model multiplicative noise).
    ``query_id=None`` corrupts every query.  ``duration=None`` never
    clears.
    """

    start: float
    duration: float | None
    factor: float
    query_id: str | None = None

    def __post_init__(self) -> None:
        _require(
            math.isfinite(self.start) and self.start >= 0,
            f"start must be finite and >= 0, got {self.start}",
        )
        if self.duration is not None:
            _require(
                math.isfinite(self.duration) and self.duration > 0,
                f"duration must be finite and > 0, got {self.duration}",
            )
        # NaN/inf are deliberately allowed; negative costs are not expressible.
        _require(
            not self.factor < 0,
            f"factor must not be negative, got {self.factor}",
        )


@dataclass(frozen=True)
class NodeCrash:
    """Kill one simulated node at virtual time ``at``.

    Every in-flight sub-query on the node fails (the cluster router fails
    them over to replica nodes, resuming from their last checkpoint).
    With ``down_for`` set, the node recovers that many seconds later and
    rejoins the cluster as a replica; otherwise it stays down.
    """

    node_id: str
    at: float
    down_for: float | None = None
    reason: str = "node crash"

    def __post_init__(self) -> None:
        _require(bool(self.node_id), "node_id must not be empty")
        _require(
            math.isfinite(self.at) and self.at >= 0,
            f"at must be finite and >= 0, got {self.at}",
        )
        if self.down_for is not None:
            _require(
                math.isfinite(self.down_for) and self.down_for > 0,
                f"down_for must be finite and > 0, got {self.down_for}",
            )


@dataclass(frozen=True)
class NetworkPartition:
    """Make one node unreachable for ``duration`` seconds from ``at``.

    The node keeps executing its sub-queries (it is partitioned, not
    dead), but the router cannot observe progress or gather results until
    the partition heals -- the global PI must carry the shard's last
    finite estimate forward, flagged stale, instead of going silent.
    """

    node_id: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        _require(bool(self.node_id), "node_id must not be empty")
        _require(
            math.isfinite(self.at) and self.at >= 0,
            f"at must be finite and >= 0, got {self.at}",
        )
        _require(
            math.isfinite(self.duration) and self.duration > 0,
            f"duration must be finite and > 0, got {self.duration}",
        )


@dataclass(frozen=True)
class NodeBrownout:
    """Scale one node's processing rate by ``factor`` for an interval.

    ``factor=0`` freezes the node entirely (it still holds its work, the
    shape of a node-local thrash or I/O storm); capacity is restored when
    the window closes.  Overlapping brownouts on a node compose
    multiplicatively.
    """

    node_id: str
    at: float
    duration: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        _require(bool(self.node_id), "node_id must not be empty")
        _require(
            math.isfinite(self.at) and self.at >= 0,
            f"at must be finite and >= 0, got {self.at}",
        )
        _require(
            math.isfinite(self.duration) and self.duration > 0,
            f"duration must be finite and > 0, got {self.duration}",
        )
        _require(
            math.isfinite(self.factor) and 0.0 <= self.factor <= 1.0,
            f"factor must be in [0, 1], got {self.factor}",
        )


@dataclass(frozen=True)
class ArrivalBurst:
    """Submit ``n`` extra queries at virtual time ``at`` -- load as a fault.

    The overload-storm shape: a thundering herd of arrivals that exceeds
    capacity.  With ``spread == 0`` all ``n`` queries land at the same
    instant; a positive spread jitters them (deterministically, per
    ``seed``) over ``[at, at + spread]``.

    Against a single :class:`~repro.sim.rdbms.SimulatedRDBMS`
    (:class:`~repro.faults.injector.FaultInjector`) the burst submits
    synthetic jobs of ``cost`` U's each, ids ``{prefix}0..{n-1}``, at
    ``priority`` (and optional relative ``deadline``).  Against a
    :class:`~repro.dist.ShardedCluster`
    (:class:`~repro.dist.chaos.ClusterFaultInjector`) set ``sql``: the
    burst submits that distributed query ``n`` times instead.
    """

    at: float
    n: int
    cost: float = 50.0
    spread: float = 0.0
    priority: int = 0
    deadline: float | None = None
    prefix: str = "burst"
    seed: int = 0
    sql: str | None = None

    def __post_init__(self) -> None:
        _require(
            math.isfinite(self.at) and self.at >= 0,
            f"at must be finite and >= 0, got {self.at}",
        )
        _require(self.n >= 1, f"n must be >= 1, got {self.n}")
        _require(
            math.isfinite(self.cost) and self.cost > 0,
            f"cost must be finite and > 0, got {self.cost}",
        )
        _require(
            math.isfinite(self.spread) and self.spread >= 0,
            f"spread must be finite and >= 0, got {self.spread}",
        )
        if self.deadline is not None:
            _require(
                math.isfinite(self.deadline) and self.deadline > 0,
                f"deadline must be finite and > 0, got {self.deadline}",
            )
        _require(bool(self.prefix), "prefix must not be empty")


#: Alias: an arrival burst *is* the overload-storm fault.
OverloadStorm = ArrivalBurst


Fault = Union[QueryCrash, QueryStall, Brownout, StatsCorruption, ArrivalBurst]

#: Faults that target a simulated node rather than a query or the whole
#: system; they only make sense against a :class:`repro.dist.ShardedCluster`.
NodeFault = Union[NodeCrash, NetworkPartition, NodeBrownout]

_FAULT_TYPES = (
    QueryCrash, QueryStall, Brownout, StatsCorruption, ArrivalBurst,
    NodeCrash, NetworkPartition, NodeBrownout,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated collection of scripted faults."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        """Build a plan from individual faults (convenience constructor)."""
        return cls(faults=tuple(faults))

    def __post_init__(self) -> None:
        for f in self.faults:
            _require(
                isinstance(f, _FAULT_TYPES),
                f"not a fault: {f!r}",
            )

    def __len__(self) -> int:
        return len(self.faults)

    def for_query(self, query_id: str) -> tuple[Fault, ...]:
        """All faults targeting *query_id* (system-wide faults excluded)."""
        return tuple(
            f for f in self.faults if getattr(f, "query_id", None) == query_id
        )

    def for_node(self, node_id: str) -> tuple["NodeFault", ...]:
        """All node-scoped faults targeting *node_id*."""
        return tuple(
            f for f in self.faults if getattr(f, "node_id", None) == node_id
        )

    def node_faults(self) -> tuple["NodeFault", ...]:
        """The node-scoped faults in plan order."""
        return tuple(
            f for f in self.faults
            if isinstance(f, (NodeCrash, NetworkPartition, NodeBrownout))
        )

    def describe(self) -> str:
        """A human-readable, one-fault-per-line description of the plan."""
        if not self.faults:
            return "(empty fault plan)"
        lines = []
        for f in self.faults:
            if isinstance(f, QueryCrash):
                trigger = (
                    f"t={f.at_time:g}s" if f.at_time is not None
                    else f"{f.at_fraction:.0%} progress"
                )
                lines.append(f"crash    {f.query_id} at {trigger}")
            elif isinstance(f, QueryStall):
                lines.append(
                    f"stall    {f.query_id} at t={f.at:g}s for {f.duration:g}s"
                )
            elif isinstance(f, Brownout):
                lines.append(
                    f"brownout x{f.factor:g} at t={f.start:g}s for {f.duration:g}s"
                )
            elif isinstance(f, ArrivalBurst):
                window = (
                    f" over {f.spread:g}s" if f.spread > 0 else ""
                )
                what = f.sql if f.sql is not None else f"{f.cost:g} U"
                lines.append(
                    f"burst    {f.n} x {what} at t={f.at:g}s{window} "
                    f"({f.prefix}*)"
                )
            elif isinstance(f, NodeCrash):
                rejoin = (
                    f", back after {f.down_for:g}s" if f.down_for is not None
                    else ", permanent"
                )
                lines.append(f"node-crash {f.node_id} at t={f.at:g}s{rejoin}")
            elif isinstance(f, NetworkPartition):
                lines.append(
                    f"partition  {f.node_id} at t={f.at:g}s for {f.duration:g}s"
                )
            elif isinstance(f, NodeBrownout):
                lines.append(
                    f"node-brownout {f.node_id} x{f.factor:g} "
                    f"at t={f.at:g}s for {f.duration:g}s"
                )
            else:
                who = f.query_id if f.query_id is not None else "all queries"
                until = (
                    f"for {f.duration:g}s" if f.duration is not None else "permanently"
                )
                lines.append(
                    f"corrupt  {who} estimates x{f.factor:g} at t={f.start:g}s {until}"
                )
        return "\n".join(lines)


def random_fault_plan(
    seed: int,
    query_ids: Sequence[str],
    horizon: float,
    n_faults: int = 4,
    node_ids: Sequence[str] | None = None,
) -> FaultPlan:
    """Generate a seeded random fault plan for chaos testing.

    Draws *n_faults* faults uniformly over the four query/system shapes,
    targeting random queries from *query_ids*, with times/durations inside
    ``[0, horizon]``.  The same seed always produces the same plan, which
    is what makes chaos-test failures reproducible.

    With ``node_ids`` given, the draw widens to the three node-scoped
    shapes as well (crash, partition, brownout, targeting random nodes).
    The flag is deliberately opt-in: when ``node_ids`` is ``None`` the
    generator's draw sequence is byte-for-byte what it always was, so
    existing seeded plans stay stable.
    """
    _require(bool(query_ids), "query_ids must not be empty")
    _require(
        math.isfinite(horizon) and horizon > 0,
        f"horizon must be finite and > 0, got {horizon}",
    )
    _require(n_faults >= 0, f"n_faults must be >= 0, got {n_faults}")
    if node_ids is not None:
        _require(bool(node_ids), "node_ids must not be empty when given")
    rng = random.Random(seed)
    n_shapes = 4 if node_ids is None else 7
    faults: list[Fault | NodeFault] = []
    for _ in range(n_faults):
        shape = rng.randrange(n_shapes)
        if shape == 0:
            qid = rng.choice(list(query_ids))
            if rng.random() < 0.5:
                faults.append(
                    QueryCrash(qid, at_time=rng.uniform(0.0, horizon))
                )
            else:
                faults.append(
                    QueryCrash(qid, at_fraction=rng.uniform(0.1, 0.9))
                )
        elif shape == 1:
            qid = rng.choice(list(query_ids))
            faults.append(
                QueryStall(
                    qid,
                    at=rng.uniform(0.0, horizon * 0.8),
                    duration=rng.uniform(horizon * 0.05, horizon * 0.3),
                )
            )
        elif shape == 2:
            faults.append(
                Brownout(
                    start=rng.uniform(0.0, horizon * 0.8),
                    duration=rng.uniform(horizon * 0.05, horizon * 0.3),
                    factor=rng.choice([0.0, 0.25, 0.5, 0.75]),
                )
            )
        elif shape == 3:
            factor = rng.choice(
                [float("nan"), float("inf"), 0.0, 0.1, 10.0, 100.0]
            )
            qid = rng.choice([None] + list(query_ids))
            faults.append(
                StatsCorruption(
                    start=rng.uniform(0.0, horizon * 0.8),
                    duration=rng.uniform(horizon * 0.05, horizon * 0.3),
                    factor=factor,
                    query_id=qid,
                )
            )
        elif shape == 4:
            assert node_ids is not None
            nid = rng.choice(list(node_ids))
            down_for = (
                rng.uniform(horizon * 0.1, horizon * 0.5)
                if rng.random() < 0.5 else None
            )
            faults.append(
                NodeCrash(nid, at=rng.uniform(0.0, horizon * 0.8),
                          down_for=down_for)
            )
        elif shape == 5:
            assert node_ids is not None
            nid = rng.choice(list(node_ids))
            faults.append(
                NetworkPartition(
                    nid,
                    at=rng.uniform(0.0, horizon * 0.8),
                    duration=rng.uniform(horizon * 0.05, horizon * 0.3),
                )
            )
        else:
            assert node_ids is not None
            nid = rng.choice(list(node_ids))
            faults.append(
                NodeBrownout(
                    nid,
                    at=rng.uniform(0.0, horizon * 0.8),
                    duration=rng.uniform(horizon * 0.05, horizon * 0.3),
                    factor=rng.choice([0.0, 0.25, 0.5, 0.75]),
                )
            )
    return FaultPlan(faults=tuple(faults))
