"""Fault injection and resilience for the simulated RDBMS (chaos layer).

The paper's central robustness claim (Sections 2.4, 4, 5.2.3) is that
multi-query progress indicators stay useful *because they adapt when
forecasts go wrong*.  This package makes that claim testable by letting
whole classes of failure be scripted against a run:

* :mod:`repro.faults.plan` -- declarative, virtual-time fault plans:
  query crashes (timed or at a progress fraction), transient stalls,
  system-wide capacity brownouts, and corrupted cost statistics
  (multiplicative noise, NaN, inf), plus node-scoped faults for sharded
  clusters (node crash, network partition, node brownout -- armed via
  :class:`repro.dist.ClusterFaultInjector`) and a seeded random-plan
  generator for chaos tests.
* :mod:`repro.faults.injector` -- applies a plan to a
  :class:`~repro.sim.rdbms.SimulatedRDBMS` through its event-hook API and
  logs every injection.
* :mod:`repro.faults.retry` -- resubmits failed queries under a
  configurable :class:`RetryPolicy` (attempts cap, exponential backoff in
  virtual time, deterministic jitter).

The workload-management side of resilience -- the runaway-query watchdog
with its observed-work fallback -- lives in :mod:`repro.wm.watchdog`.
See ``docs/RESILIENCE.md`` for the full model.
"""

from repro.faults.injector import FaultInjector, InjectionEvent
from repro.faults.plan import (
    Brownout,
    FaultPlan,
    NetworkPartition,
    NodeBrownout,
    NodeCrash,
    QueryCrash,
    QueryStall,
    StatsCorruption,
    random_fault_plan,
)
from repro.faults.retry import RetryController, RetryEvent, RetryPolicy

__all__ = [
    "Brownout",
    "FaultInjector",
    "FaultPlan",
    "InjectionEvent",
    "NetworkPartition",
    "NodeBrownout",
    "NodeCrash",
    "QueryCrash",
    "QueryStall",
    "RetryController",
    "RetryEvent",
    "RetryPolicy",
    "StatsCorruption",
    "random_fault_plan",
]
