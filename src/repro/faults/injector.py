"""Apply a :class:`~repro.faults.plan.FaultPlan` to a simulated RDBMS.

The :class:`FaultInjector` is the bridge between declarative fault plans
and the simulator's resilience hooks: it wraps the RDBMS's speed model in a
:class:`~repro.sim.scheduler.ScaledSpeedModel` overlay, schedules the
begin/end edges of every timed fault as one-shot virtual-time events
(:meth:`~repro.sim.rdbms.SimulatedRDBMS.add_event`), and -- for
progress-fraction crash triggers -- registers a periodic monitor that fires
the crash once the target query's progress crosses the threshold (accurate
to one ``resolution`` tick, like a real monitoring agent).

Every injection that actually engages or disengages is logged as an
:class:`InjectionEvent`, and query-targeted faults additionally land in the
query's trace (:meth:`~repro.sim.trace.QueryTrace.record_fault`), so a run's
full recovery timeline can be reconstructed afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.plan import (
    ArrivalBurst,
    Brownout,
    FaultPlan,
    NetworkPartition,
    NodeBrownout,
    NodeCrash,
    QueryCrash,
    QueryStall,
    StatsCorruption,
)
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.sim.scheduler import ScaledSpeedModel


@dataclass(frozen=True)
class InjectionEvent:
    """One fault actually applied (or lifted) during a run.

    ``kind`` mirrors the fault shape with an edge suffix where relevant
    (``"brownout-begin"``, ``"stall-end"``, ``"crash"``,
    ``"corruption-begin"``, ...); ``query_id`` is ``None`` for system-wide
    faults; ``skipped`` marks injections that found their target already
    terminal and did nothing.
    """

    time: float
    kind: str
    query_id: str | None = None
    detail: str = ""
    skipped: bool = False


class FaultInjector:
    """Arms a fault plan against a :class:`SimulatedRDBMS`.

    Parameters
    ----------
    rdbms:
        The simulator to inject into.
    plan:
        The declarative fault script.
    resolution:
        Check interval (virtual seconds) for progress-fraction crash
        triggers.  Timed faults are exact; fraction triggers fire within
        one resolution tick of the threshold crossing.

    Call :meth:`arm` once before running the simulation.  Arming is
    idempotent per injector; use one injector per plan.
    """

    def __init__(
        self,
        rdbms: SimulatedRDBMS,
        plan: FaultPlan,
        resolution: float = 0.25,
    ) -> None:
        if resolution <= 0 or not math.isfinite(resolution):
            raise ValueError(f"resolution must be finite and > 0, got {resolution}")
        self._rdbms = rdbms
        self._plan = plan
        self._resolution = resolution
        self._armed = False
        #: Chronological log of injections applied during the run.
        self.events: list[InjectionEvent] = []
        self._pending_fraction_crashes: list[QueryCrash] = []
        self._active_brownouts: list[float] = []
        self._active_stalls: dict[str, int] = {}
        self._overlay: ScaledSpeedModel | None = None

    @property
    def plan(self) -> FaultPlan:
        """The fault plan this injector applies."""
        return self._plan

    @property
    def armed(self) -> bool:
        """Whether :meth:`arm` has been called."""
        return self._armed

    def arm(self) -> None:
        """Register every fault in the plan with the simulator."""
        if self._armed:
            raise RuntimeError("injector already armed")
        for fault in self._plan.faults:
            if isinstance(fault, (NodeCrash, NetworkPartition, NodeBrownout)):
                raise ValueError(
                    f"{type(fault).__name__} targets a cluster node; arm it "
                    "with repro.dist.ClusterFaultInjector against a "
                    "ShardedCluster, not with FaultInjector against one RDBMS"
                )
        self._armed = True
        overlay = self._rdbms.speed_model
        if not isinstance(overlay, ScaledSpeedModel):
            overlay = ScaledSpeedModel(overlay)
            self._rdbms.speed_model = overlay
        self._overlay = overlay

        for fault in self._plan.faults:
            if isinstance(fault, Brownout):
                self._arm_brownout(fault)
            elif isinstance(fault, QueryStall):
                self._arm_stall(fault)
            elif isinstance(fault, QueryCrash):
                self._arm_crash(fault)
            elif isinstance(fault, ArrivalBurst):
                self._arm_burst(fault)
            else:
                self._arm_corruption(fault)

        if self._pending_fraction_crashes:
            self._rdbms.add_sampler(self._resolution, self._check_fraction_crashes)

    def timeline(self) -> list[str]:
        """The injection log as formatted ``t=...`` lines, in time order."""
        lines = []
        for e in sorted(self.events, key=lambda e: e.time):
            who = f" {e.query_id}" if e.query_id else ""
            skip = " (skipped: target already terminal)" if e.skipped else ""
            detail = f" -- {e.detail}" if e.detail else ""
            lines.append(f"t={e.time:8.2f}s  {e.kind:<17}{who}{detail}{skip}")
        return lines

    # ------------------------------------------------------------------
    # Per-shape arming
    # ------------------------------------------------------------------

    def _log(
        self,
        kind: str,
        query_id: str | None = None,
        detail: str = "",
        skipped: bool = False,
    ) -> None:
        self.events.append(
            InjectionEvent(
                time=self._rdbms.clock,
                kind=kind,
                query_id=query_id,
                detail=detail,
                skipped=skipped,
            )
        )
        obs = self._rdbms.obs
        if obs is not None:
            obs.metrics.counter("faults.injected").inc()
            obs.tracer.emit(
                f"fault.{kind}",
                self._rdbms.clock,
                query_id,
                detail=detail,
                skipped=skipped,
            )

    def _arm_brownout(self, fault: Brownout) -> None:
        def begin(rdbms: SimulatedRDBMS) -> None:
            self._active_brownouts.append(fault.factor)
            self._apply_brownouts()
            self._log("brownout-begin", detail=f"capacity x{fault.factor:g}")

        def end(rdbms: SimulatedRDBMS) -> None:
            self._active_brownouts.remove(fault.factor)
            self._apply_brownouts()
            self._log("brownout-end", detail="capacity restored")

        self._rdbms.add_event(fault.start, begin)
        self._rdbms.add_event(fault.start + fault.duration, end)

    def _apply_brownouts(self) -> None:
        factor = 1.0
        for f in self._active_brownouts:
            factor *= f
        assert self._overlay is not None
        self._overlay.set_rate_factor(factor)

    def _arm_stall(self, fault: QueryStall) -> None:
        qid = fault.query_id

        def begin(rdbms: SimulatedRDBMS) -> None:
            record = self._record_or_none(qid)
            if record is None or record.terminal:
                self._log("stall-begin", qid, skipped=True)
                return
            self._active_stalls[qid] = self._active_stalls.get(qid, 0) + 1
            assert self._overlay is not None
            self._overlay.set_query_factor(qid, 0.0)
            record.trace.record_fault(
                rdbms.clock, "stall-begin", f"stalled for {fault.duration:g}s"
            )
            self._log("stall-begin", qid, detail=f"for {fault.duration:g}s")

        def end(rdbms: SimulatedRDBMS) -> None:
            if qid not in self._active_stalls:
                return
            self._active_stalls[qid] -= 1
            if self._active_stalls[qid] <= 0:
                del self._active_stalls[qid]
                assert self._overlay is not None
                self._overlay.clear_query_factor(qid)
            record = self._record_or_none(qid)
            if record is not None:
                record.trace.record_fault(rdbms.clock, "stall-end")
            self._log("stall-end", qid)

        self._rdbms.add_event(fault.at, begin)
        self._rdbms.add_event(fault.at + fault.duration, end)

    def _arm_crash(self, fault: QueryCrash) -> None:
        if fault.at_fraction is not None:
            self._pending_fraction_crashes.append(fault)
            return

        def crash(rdbms: SimulatedRDBMS) -> None:
            self._fire_crash(fault)

        assert fault.at_time is not None
        self._rdbms.add_event(fault.at_time, crash)

    def _fire_crash(self, fault: QueryCrash) -> None:
        record = self._record_or_none(fault.query_id)
        if record is None or record.terminal:
            self._log("crash", fault.query_id, skipped=True)
            return
        self._rdbms.fail(fault.query_id, fault.reason)
        self._log("crash", fault.query_id, detail=fault.reason)

    def _check_fraction_crashes(self, rdbms: SimulatedRDBMS) -> None:
        for fault in list(self._pending_fraction_crashes):
            record = self._record_or_none(fault.query_id)
            if record is None:
                continue  # not submitted yet; keep watching
            if record.terminal:
                self._pending_fraction_crashes.remove(fault)
                self._log("crash", fault.query_id, skipped=True)
                continue
            job = record.job
            done = job.completed_work
            total = done + max(job.estimated_remaining_cost(), 0.0)
            fraction = 1.0 if total <= 0 else done / total
            assert fault.at_fraction is not None
            if fraction + 1e-12 >= fault.at_fraction:
                self._pending_fraction_crashes.remove(fault)
                self._fire_crash(fault)

    def _arm_burst(self, fault: ArrivalBurst) -> None:
        if fault.sql is not None:
            raise ValueError(
                "ArrivalBurst with sql targets a cluster; arm it with "
                "repro.dist.ClusterFaultInjector, not FaultInjector"
            )

        def make_job(i: int, f: ArrivalBurst = fault) -> SyntheticJob:
            return SyntheticJob(
                f"{f.prefix}{i}", f.cost,
                priority=f.priority, deadline=f.deadline,
            )

        schedule = ArrivalSchedule()
        schedule.add_burst(
            fault.at, fault.n, make_job, spread=fault.spread, seed=fault.seed
        )
        self._rdbms.schedule(schedule)

        def begin(rdbms: SimulatedRDBMS) -> None:
            window = f" over {fault.spread:g}s" if fault.spread > 0 else ""
            self._log(
                "burst-begin",
                detail=f"{fault.n} x {fault.cost:g} U{window} "
                       f"({fault.prefix}*)",
            )

        self._rdbms.add_event(fault.at, begin)

    def _arm_corruption(self, fault: StatsCorruption) -> None:
        def begin(rdbms: SimulatedRDBMS) -> None:
            rdbms.corrupt_estimates(fault.factor, fault.query_id)
            record = (
                self._record_or_none(fault.query_id)
                if fault.query_id is not None
                else None
            )
            if record is not None:
                record.trace.record_fault(
                    rdbms.clock, "corruption-begin", f"estimates x{fault.factor:g}"
                )
            self._log(
                "corruption-begin", fault.query_id,
                detail=f"estimates x{fault.factor:g}",
            )

        self._rdbms.add_event(fault.start, begin)
        if fault.duration is not None:

            def end(rdbms: SimulatedRDBMS) -> None:
                rdbms.clear_estimate_corruption(fault.query_id)
                self._log("corruption-end", fault.query_id)

            self._rdbms.add_event(fault.start + fault.duration, end)

    def _record_or_none(self, query_id: str):
        try:
            return self._rdbms.record(query_id)
        except KeyError:
            return None
