"""Retry policy and controller: resubmit failed queries with backoff.

A real workload manager does not let a transient crash discard a query: it
resubmits, with exponential backoff so a persistently failing query cannot
monopolise the admission queue.  This module provides that loop for the
simulated RDBMS:

* :class:`RetryPolicy` -- attempts cap, exponential backoff in virtual
  time, and *deterministic* jitter (hashed from the query id and attempt
  number, so runs are reproducible without a shared RNG).
* :class:`RetryController` -- subscribes to the RDBMS ``on_failure`` hook;
  on each failure it either schedules a resubmission
  (:meth:`~repro.sim.rdbms.SimulatedRDBMS.resubmit`) after the policy's
  delay, or gives up once the attempts cap is reached.  Attempt history
  lands on the :class:`~repro.sim.rdbms.QueryRecord` and the query's
  trace, so progress indicators can account for redone work.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.jobs import Job
from repro.sim.rdbms import SimulatedRDBMS

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard dep
    from repro.qos.breaker import CircuitBreaker


def _unit_hash(query_id: str, attempt: int) -> float:
    """Deterministic pseudo-random number in [0, 1) from (query_id, attempt).

    Uses CRC32 rather than :func:`hash` because the latter is salted per
    process for strings -- backoff schedules must be stable across runs.
    """
    return zlib.crc32(f"{query_id}#{attempt}".encode()) / 2**32


@dataclass(frozen=True)
class RetryPolicy:
    """How failed queries are retried.

    Attributes
    ----------
    max_attempts:
        Total execution attempts allowed per query, including the first
        (``1`` disables retries).
    base_delay:
        Backoff before the second attempt, in virtual seconds.
    multiplier:
        Exponential growth factor per further attempt.
    jitter:
        Symmetric jitter fraction: the delay is scaled by a deterministic
        factor in ``[1 - jitter, 1 + jitter]`` derived from the query id
        and attempt number.  ``0`` disables jitter.  The default is a
        small nonzero value: when one fault kills K in-flight queries at
        the same virtual instant (a node crash), zero jitter would
        resubmit all K at exactly the same time -- a retry storm.  The
        jitter is still fully deterministic (hashed per query id and
        attempt), so runs remain reproducible.
    max_delay:
        Optional cap on any single backoff delay.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.1
    max_delay: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not math.isfinite(self.base_delay) or self.base_delay < 0:
            raise ValueError(f"base_delay must be finite and >= 0, got {self.base_delay}")
        if not math.isfinite(self.multiplier) or self.multiplier < 1.0:
            raise ValueError(f"multiplier must be finite and >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_delay is not None and (
            not math.isfinite(self.max_delay) or self.max_delay < 0
        ):
            raise ValueError(f"max_delay must be finite and >= 0, got {self.max_delay}")

    def delay(
        self,
        failed_attempts: int,
        query_id: str = "",
        breaker: "CircuitBreaker | None" = None,
        now: float = 0.0,
    ) -> float:
        """Backoff delay after *failed_attempts* attempts have failed.

        ``failed_attempts`` is 1 after the first failure.  The delay grows
        as ``base_delay * multiplier ** (failed_attempts - 1)``, capped at
        ``max_delay``, then jittered deterministically per
        ``(query_id, failed_attempts)``.

        When the target node's circuit *breaker* is open at virtual time
        *now*, the breaker's remaining cooldown replaces the backoff: a
        retry before the breaker would even let the request through is a
        futile attempt, so the schedule waits for the half-open probe
        window instead of burning backoff steps.  A closed (or half-open)
        breaker leaves the backoff sequence byte-identical to the
        breaker-less path.
        """
        if failed_attempts < 1:
            raise ValueError(f"failed_attempts must be >= 1, got {failed_attempts}")
        if breaker is not None:
            hold = breaker.retry_after(now)
            if hold > 0:
                return hold
        d = self.base_delay * self.multiplier ** (failed_attempts - 1)
        if self.max_delay is not None:
            d = min(d, self.max_delay)
        if self.jitter > 0:
            d *= 1.0 + self.jitter * (2.0 * _unit_hash(query_id, failed_attempts) - 1.0)
        return d


@dataclass(frozen=True)
class RetryEvent:
    """One retry-layer decision: a scheduled resubmission or a give-up."""

    time: float
    query_id: str
    #: ``"scheduled"``, ``"resubmitted"``, or ``"gave-up"``.
    action: str
    attempt: int
    detail: str = ""


#: Given the failed job and the next attempt number, build the fresh job to
#: resubmit.  The default uses :meth:`repro.sim.jobs.Job.retry_copy`.
JobFactory = Callable[[Job, int], Job]


class RetryController:
    """Automatically resubmit failed queries under a :class:`RetryPolicy`.

    Attach one controller per RDBMS *before* running the simulation; it
    hooks ``on_failure`` and schedules resubmissions as virtual-time
    events.  Queries whose jobs cannot be recreated automatically
    (engine-backed executions) need an explicit ``job_factory``.

    Parameters
    ----------
    rdbms:
        The simulator to protect.
    policy:
        The retry policy; defaults to 3 attempts with 1s/2x backoff.
    job_factory:
        ``(failed_job, next_attempt) -> fresh Job``.  Defaults to
        ``failed_job.retry_copy()``.
    """

    def __init__(
        self,
        rdbms: SimulatedRDBMS,
        policy: RetryPolicy | None = None,
        job_factory: JobFactory | None = None,
    ) -> None:
        self._rdbms = rdbms
        self.policy = policy if policy is not None else RetryPolicy()
        self._factory = job_factory
        #: Chronological log of retry decisions.
        self.events: list[RetryEvent] = []
        #: Query ids the controller stopped retrying (cap reached, drain,
        #: or an unreproducible job), in give-up order.
        self.given_up: list[str] = []
        rdbms.on_failure.append(self._on_failure)

    def _log(self, query_id: str, action: str, attempt: int, detail: str = "") -> None:
        self.events.append(
            RetryEvent(
                time=self._rdbms.clock,
                query_id=query_id,
                action=action,
                attempt=attempt,
                detail=detail,
            )
        )

    def _give_up(self, query_id: str, attempt: int, why: str) -> None:
        self.given_up.append(query_id)
        self._log(query_id, "gave-up", attempt, why)
        record = self._rdbms.record(query_id)
        record.trace.record_fault(self._rdbms.clock, "retry-exhausted", why)
        # The abandoned attempt's work is lost in full.
        record.trace.record_attempt_work(0.0, record.job.completed_work)

    def _on_failure(self, time: float, query_id: str, reason: str) -> None:
        record = self._rdbms.record(query_id)
        attempts = record.attempts
        if attempts >= self.policy.max_attempts:
            self._give_up(
                query_id, attempts,
                f"attempt {attempts}/{self.policy.max_attempts} failed: {reason}",
            )
            return
        delay = self.policy.delay(attempts, query_id)
        self._log(
            query_id, "scheduled", attempts + 1,
            f"retry in {delay:g}s after: {reason}",
        )
        self._rdbms.add_event(
            time + delay, lambda rdbms, qid=query_id: self._resubmit(qid)
        )

    def _resubmit(self, query_id: str) -> None:
        record = self._rdbms.record(query_id)
        if record.status != "failed":
            return  # finished/aborted/resubmitted by someone else meanwhile
        if self._rdbms.draining:
            self._give_up(query_id, record.attempts, "system draining")
            return
        next_attempt = record.attempts + 1
        try:
            if self._factory is not None:
                job = self._factory(record.job, next_attempt)
            else:
                job = record.job.retry_copy()
        except NotImplementedError as exc:
            self._give_up(query_id, record.attempts, str(exc))
            return
        # Work accounting: whatever the replacement starts with was carried
        # over from a checkpoint (work-preserving recovery); the rest of the
        # failed attempt's work is redone from scratch, i.e. lost.
        failed_work = record.job.completed_work
        preserved = min(max(job.completed_work, 0.0), failed_work)
        lost = max(failed_work - preserved, 0.0)
        record.trace.record_attempt_work(preserved, lost)
        self._rdbms.resubmit(job)
        self._log(
            query_id, "resubmitted", next_attempt,
            f"preserved {preserved:g} U, lost {lost:g} U",
        )

    def retried(self, query_id: str) -> int:
        """Number of resubmissions performed so far for *query_id*."""
        return sum(
            1
            for e in self.events
            if e.query_id == query_id and e.action == "resubmitted"
        )
