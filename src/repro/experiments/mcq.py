"""The Multiple Concurrent Query (MCQ) experiment (paper Section 5.2.1).

Ten queries run concurrently; their sizes ``N_i`` follow a Zipf distribution
with parameter ``a = 1.2`` and at time 0 each query is at a random point of
its execution.  No new queries arrive.  We focus on a typical large query
``Q`` (the one finishing last) and trace:

* **Figure 3** -- the remaining execution time estimated over time by the
  single-query PI and the multi-query PI, against the actual remaining time;
* **Figure 4** -- the execution speed of ``Q`` monitored over time (which
  rises roughly five-fold as the other queries finish).

The paper's headline observations, which the benches assert as *shape*:
the multi-query estimate stays close to the actual remaining time, while the
single-query estimate starts roughly a factor of three too high.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.metrics import StepSeries
from repro.experiments.harness import MULTI_QUERY, SINGLE_QUERY, PIHarness
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class MCQConfig:
    """Parameters of one MCQ run (paper defaults)."""

    n_queries: int = 10
    zipf_a: float = 1.2
    #: Candidate part-table sizes N (ranks of the Zipf distribution).
    max_size: int = 100
    #: Work units per unit of size: cost_i = cost_per_size * N_i.
    cost_per_size: float = 30.0
    #: Total processing rate C, U/s.
    processing_rate: float = 10.0
    #: PI sampling interval, seconds.
    sample_interval: float = 2.0
    seed: int = 1
    #: Also sample one multi-query PI per projection backend
    #: (``backend:incremental`` / ``backend:reference``) so the
    #: observability layer can report backend agreement.
    with_backend_agreement: bool = False


@dataclass
class MCQResult:
    """Series for the focus query, ready to render Figures 3 and 4."""

    focus_query: str
    finish_time: float
    #: (time, actual remaining seconds) -- the dashed line of Figure 3.
    actual: list[tuple[float, float]]
    #: (time, estimate) series per estimator name.
    estimates: dict[str, list[tuple[float, float]]]
    #: (time, U/s) observed execution speed -- Figure 4.
    speed: list[tuple[float, float]]
    #: Finish time of every query in the run.
    finish_times: dict[str, float]

    def initial_overestimate_factor(self, estimator: str = SINGLE_QUERY) -> float:
        """Ratio of the estimator's first estimate to the truth at that time.

        The paper reports the single-query PI starting ~3x too high.
        """
        series = self.estimates[estimator]
        if not series:
            raise ValueError(f"no estimates recorded for {estimator!r}")
        t0, est0 = series[0]
        actual = max(self.finish_time - t0, 1e-9)
        return est0 / actual

    def speedup_factor(self) -> float:
        """Ratio of the focus query's final speed to its initial speed."""
        if len(self.speed) < 2:
            raise ValueError("not enough speed samples")
        first = self.speed[0][1]
        last = self.speed[-1][1]
        if first <= 0:
            raise ValueError("initial speed is zero")
        return last / first

    def mean_abs_error(self, estimator: str) -> float:
        """Mean absolute error (seconds) of an estimator over the run."""
        series = self.estimates[estimator]
        if not series:
            raise ValueError(f"no estimates recorded for {estimator!r}")
        errs = [abs(est - max(self.finish_time - t, 0.0)) for t, est in series]
        return sum(errs) / len(errs)


def run_mcq(config: MCQConfig = MCQConfig()) -> MCQResult:
    """Run one MCQ experiment and collect the Figure 3 / Figure 4 series."""
    rng = random.Random(config.seed)
    sizes = ZipfSampler.over_range(config.zipf_a, config.max_size, rng).sample_many(
        config.n_queries
    )
    rdbms = SimulatedRDBMS(processing_rate=config.processing_rate)
    jobs = []
    for i, size in enumerate(sizes):
        cost = size * config.cost_per_size
        done = rng.uniform(0.0, 0.95) * cost
        jobs.append(SyntheticJob(f"Q{i + 1}", cost, initial_done=done))
    for job in jobs:
        rdbms.submit(job)

    harness = PIHarness(
        rdbms,
        interval=config.sample_interval,
        with_backend_agreement=config.with_backend_agreement,
    )

    # Focus on the query with the largest remaining cost: it finishes last
    # and experiences the full speed-up as the others drain.
    focus = max(jobs, key=lambda j: j.estimated_remaining_cost()).query_id

    rdbms.run_to_completion()

    trace = rdbms.traces[focus]
    finish = trace.finished_at
    assert finish is not None

    estimates: dict[str, list[tuple[float, float]]] = {}
    for name in (SINGLE_QUERY, MULTI_QUERY):
        series = trace.estimates.get(name, StepSeries())
        estimates[name] = [(t, v) for t, v in series if t <= finish]

    actual = [
        (t, finish - t)
        for t, _ in estimates[MULTI_QUERY]
    ]
    speed = [(t, v) for t, v in trace.speed if t <= finish]
    finish_times = {
        qid: tr.finished_at
        for qid, tr in rdbms.traces.queries.items()
        if tr.finished_at is not None
    }
    del harness
    return MCQResult(
        focus_query=focus,
        finish_time=finish,
        actual=actual,
        estimates=estimates,
        speed=speed,
        finish_times=finish_times,
    )
