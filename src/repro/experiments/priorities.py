"""Priority-aware progress estimation (an extension the paper could not test).

Section 5.1: "PostgreSQL does not support priorities for queries.  Hence,
all the queries Q_i have the same priority."  The paper's *algorithms*
(Sections 2-3) are nevertheless fully priority-aware through Assumption 3
(speed proportional to priority weight); the simulator implements weighted
fair sharing exactly, so this reproduction can evaluate the mixed-priority
case the prototype could not.

The experiment runs MCQ-style workloads whose queries carry priorities
drawn from a configurable set.  The multi-query PI sorts by ``c_i / w_i``
and should remain exact; the single-query PI only sees current speeds, and
its error profile now depends on the *weight mix*: a low-priority query
sharing with high-priority ones speeds up dramatically as they finish.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.metrics import mean, relative_error
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


@dataclass(frozen=True)
class PriorityMCQConfig:
    """Parameters of one mixed-priority MCQ run."""

    n_queries: int = 10
    priorities: tuple[int, ...] = (0, 1, 2)
    min_cost: float = 50.0
    max_cost: float = 600.0
    processing_rate: float = 10.0
    runs: int = 10
    seed: int = 17


@dataclass
class PriorityErrors:
    """Mean relative errors (all queries / lowest-priority queries)."""

    single_avg: float
    multi_avg: float
    single_low_priority: float
    multi_low_priority: float


def run_priority_mcq(config: PriorityMCQConfig = PriorityMCQConfig()) -> PriorityErrors:
    """Time-0 estimation errors over mixed-priority workloads."""
    single_all: list[float] = []
    multi_all: list[float] = []
    single_low: list[float] = []
    multi_low: list[float] = []

    for r in range(config.runs):
        rng = random.Random(config.seed + r)
        rdbms = SimulatedRDBMS(processing_rate=config.processing_rate)
        jobs = []
        for i in range(config.n_queries):
            cost = rng.uniform(config.min_cost, config.max_cost)
            done = rng.uniform(0.0, 0.8) * cost
            prio = rng.choice(config.priorities)
            job = SyntheticJob(f"Q{i}", cost, priority=prio, initial_done=done)
            jobs.append(job)
            rdbms.submit(job)

        snapshot = rdbms.snapshot()
        speeds = rdbms.current_speeds()
        multi_est = MultiQueryProgressIndicator().estimate(snapshot)
        rdbms.run_to_completion()

        lowest = min(config.priorities)
        for job in jobs:
            actual = rdbms.traces[job.query_id].finished_at
            assert actual is not None
            single = snapshot.find(job.query_id).remaining_cost / speeds[job.query_id]
            s_err = relative_error(single, actual)
            m_err = relative_error(multi_est.for_query(job.query_id), actual)
            single_all.append(s_err)
            multi_all.append(m_err)
            if job.priority == lowest:
                single_low.append(s_err)
                multi_low.append(m_err)

    return PriorityErrors(
        single_avg=mean(single_all),
        multi_avg=mean(multi_all),
        single_low_priority=mean(single_low) if single_low else float("nan"),
        multi_low_priority=mean(multi_low) if multi_low else float("nan"),
    )


def sweep_priority_spread(
    base: PriorityMCQConfig = PriorityMCQConfig(),
    spreads: Sequence[tuple[int, ...]] = ((0,), (0, 1), (0, 2), (0, 3)),
) -> list[tuple[str, PriorityErrors]]:
    """Error profiles across increasingly dispersed priority mixes.

    A spread of ``(0,)`` is the paper's equal-priority setting; wider
    spreads make weighted sharing (Assumption 3) increasingly load-bearing.
    """
    out = []
    for priorities in spreads:
        config = PriorityMCQConfig(
            n_queries=base.n_queries,
            priorities=tuple(priorities),
            min_cost=base.min_cost,
            max_cost=base.max_cost,
            processing_rate=base.processing_rate,
            runs=base.runs,
            seed=base.seed,
        )
        label = "/".join(str(p) for p in priorities)
        out.append((label, run_priority_mcq(config)))
    return out
