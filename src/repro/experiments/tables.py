"""Paper Table 1: the test data set.

The paper reports:

    =============  =================  ==========
    table          number of tuples   total size
    lineitem       24M                3.02 GB
    part_i (i>=1)  10 x N_i           1.4 x N_i KB
    =============  =================  ==========

We regenerate the same table at a configurable ``scale``.  Sizes are
reported in pages (our storage unit); the *ratios* -- lineitem rows per
part row, ``10 * N_i`` part sizing, ~30 matches per part tuple -- are the
quantities the experiments depend on and are asserted by the bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.tpcr import TpcrConfig, TpcrDataset, generate


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table 1."""

    table: str
    tuples: int
    pages: int
    paper_tuples: str
    paper_size: str


@dataclass
class Table1Result:
    """The reproduced test-data-set summary."""

    rows: list[Table1Row]
    dataset: TpcrDataset

    def render(self) -> str:
        """Plain-text table mirroring the paper's Table 1."""
        header = (
            f"{'table':<12} {'tuples':>10} {'pages':>8}   "
            f"{'paper tuples':>14} {'paper size':>12}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                f"{r.table:<12} {r.tuples:>10} {r.pages:>8}   "
                f"{r.paper_tuples:>14} {r.paper_size:>12}"
            )
        return "\n".join(lines)


def build_table1(
    config: TpcrConfig = TpcrConfig(),
    part_sizes: dict[int, int] | None = None,
) -> Table1Result:
    """Generate the dataset and summarise it as Table 1."""
    sizes = part_sizes if part_sizes is not None else {1: 5, 2: 2, 3: 3}
    dataset = generate(config, part_sizes=sizes)
    rows: list[Table1Row] = []
    for name, tuples, pages in dataset.table_summary():
        if name == "lineitem":
            rows.append(
                Table1Row(name, tuples, pages, "24M", "3.02GB")
            )
        else:
            n = dataset.part_sizes[name]
            rows.append(
                Table1Row(
                    name, tuples, pages, f"10 x {n}", f"1.4 x {n} KB"
                )
            )
    return Table1Result(rows=rows, dataset=dataset)
