"""The Non-empty Admission Queue (NAQ) experiment (paper Section 5.2.2).

Three queries with sizes ``N1 = 50, N2 = 10, N3 = 20`` are submitted at time
0 under an admission policy allowing at most two concurrent queries.  Q1 and
Q2 start; Q3 waits in the queue until Q2 finishes.

Figure 5 compares three estimators for Q1's remaining time:

* the single-query PI,
* the multi-query PI that ignores the admission queue, and
* the multi-query PI that considers the admission queue,

showing that queue visibility "lets the PI see farther into the future":
only the queue-aware estimate is accurate before Q2 finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.experiments.harness import (
    MULTI_QUERY,
    MULTI_QUERY_NO_QUEUE,
    SINGLE_QUERY,
    PIHarness,
)
from repro.sim.rdbms import SimulatedRDBMS, make_synthetic_workload


@dataclass(frozen=True)
class NAQConfig:
    """Parameters of the NAQ run (paper defaults: N = 50, 10, 20)."""

    sizes: tuple[int, int, int] = (50, 10, 20)
    #: Work units per unit of size.
    cost_per_size: float = 5.0
    processing_rate: float = 1.0
    multiprogramming_limit: int = 2
    sample_interval: float = 2.0


@dataclass
class NAQResult:
    """Series for Q1, ready to render Figure 5."""

    #: (time, estimate) per estimator for Q1.
    estimates: dict[str, list[tuple[float, float]]]
    #: Q1's actual finish time.
    q1_finish: float
    #: Q3's start time (= Q2's finish, the first vertical line in Fig. 5).
    q3_start: float
    #: Q3's finish time (the second vertical line in Fig. 5).
    q3_finish: float

    def error_at(self, estimator: str, time: float) -> float:
        """Absolute estimation error for Q1 at *time*, seconds."""
        series = self.estimates[estimator]
        candidates = [(t, v) for t, v in series if t <= time]
        if not candidates:
            raise ValueError(f"no {estimator!r} estimate at or before {time}")
        t, v = candidates[-1]
        return abs(v - (self.q1_finish - t))

    def mean_abs_error(self, estimator: str, until: float | None = None) -> float:
        """Mean absolute error of an estimator over [0, until]."""
        horizon = self.q1_finish if until is None else until
        series = [(t, v) for t, v in self.estimates[estimator] if t <= horizon]
        if not series:
            raise ValueError(f"no estimates for {estimator!r}")
        errs = [abs(v - (self.q1_finish - t)) for t, v in series]
        return sum(errs) / len(errs)


def run_naq(config: NAQConfig = NAQConfig()) -> NAQResult:
    """Run the NAQ experiment and collect the Figure 5 series."""
    costs = [n * config.cost_per_size for n in config.sizes]
    jobs = make_synthetic_workload(costs)
    rdbms = SimulatedRDBMS(
        processing_rate=config.processing_rate,
        multiprogramming_limit=config.multiprogramming_limit,
    )
    for job in jobs:
        rdbms.submit(job)

    harness = PIHarness(
        rdbms,
        interval=config.sample_interval,
        multi_indicators={
            MULTI_QUERY: MultiQueryProgressIndicator(consider_queue=True),
            MULTI_QUERY_NO_QUEUE: MultiQueryProgressIndicator(consider_queue=False),
        },
    )
    rdbms.run_to_completion()
    del harness

    q1 = rdbms.traces["Q1"]
    q3 = rdbms.traces["Q3"]
    assert q1.finished_at is not None and q3.finished_at is not None
    assert q3.started_at is not None

    estimates = {}
    for name in (SINGLE_QUERY, MULTI_QUERY, MULTI_QUERY_NO_QUEUE):
        series = q1.estimates.get(name)
        estimates[name] = (
            [(t, v) for t, v in series if t <= q1.finished_at] if series else []
        )
    return NAQResult(
        estimates=estimates,
        q1_finish=q1.finished_at,
        q3_start=q3.started_at,
        q3_finish=q3.finished_at,
    )
