"""The scheduled-maintenance workload-management experiment (Section 5.3).

Ten queries are running at the inspection time ``rt``; their total costs
follow Zipf(``a - 1``) (the size-biased distribution of queries caught
running, per the paper's derivation) and each query is at a random point of
its execution.  Maintenance is scheduled ``t`` seconds later.  Three methods
decide what to abort:

* **no PI** -- operations O1+O2: let everything run, abort stragglers at
  the deadline;
* **single-query PI** -- O1+O2'+O3 with constant-load estimates, aborting
  the largest remaining cost first;
* **multi-query PI** -- O1+O2'+O3 with the Section 3.3 greedy knapsack.

Figure 11 plots the unfinished work ``UW / TW`` (Case 2: total cost of
aborted queries) against the normalised deadline ``t / t_finish``, together
with the *theoretical limit* computed from exact run-to-completion
information.  The paper's headline shapes:

* at ``t = t_finish`` the no-PI and multi-PI methods lose nothing while the
  single-PI method needlessly aborts a large fraction (67% in the paper);
* for ``t < t_finish`` the multi-PI method loses the least work and tracks
  the theoretical limit closely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.metrics import mean
from repro.core.model import QuerySnapshot
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.maintenance import LostWorkCase
from repro.wm.oracle import exact_maintenance_plan
from repro.wm.policies import (
    DecisionFn,
    decide_multi_pi,
    decide_no_pi,
    decide_single_pi,
    execute_policy,
)
from repro.workload.zipf import ZipfSampler

#: Method names, matching the paper's Figure 11 legend.
NO_PI = "no PI"
SINGLE_PI = "single-query PI"
MULTI_PI = "multi-query PI"
THEORETICAL = "theoretical limit"

_DECISIONS: dict[str, DecisionFn] = {
    NO_PI: decide_no_pi,
    SINGLE_PI: decide_single_pi,
    MULTI_PI: decide_multi_pi,
}


@dataclass(frozen=True)
class MaintenanceConfig:
    """Parameters of the maintenance experiment (paper defaults)."""

    n_queries: int = 10
    #: Zipf exponent of the *submitted* workload; running queries are
    #: size-biased to ``a - 1``.
    zipf_a: float = 2.2
    max_size: int = 100
    cost_per_size: float = 5.0
    processing_rate: float = 1.0
    runs: int = 10
    seed: int = 7
    case: LostWorkCase = LostWorkCase.TOTAL_COST


def sample_running_queries(
    config: MaintenanceConfig, rng: random.Random
) -> list[QuerySnapshot]:
    """The queries caught running at the inspection time ``rt``.

    Sizes are drawn from the size-biased Zipf(``a - 1``); completed work is
    a uniform fraction of the total cost (each query is at a random point
    of its execution).
    """
    sampler = ZipfSampler.over_range(config.zipf_a, config.max_size, rng).size_biased()
    queries = []
    for i in range(config.n_queries):
        cost = sampler.sample() * config.cost_per_size
        done = rng.uniform(0.0, 1.0) * cost
        queries.append(
            QuerySnapshot(
                query_id=f"Q{i + 1}",
                remaining_cost=cost - done,
                completed_work=done,
            )
        )
    return queries


def t_finish_of(queries: Sequence[QuerySnapshot], processing_rate: float) -> float:
    """The no-interruption drain time ``t_finish`` of the workload."""
    return sum(q.remaining_cost for q in queries) / processing_rate


@dataclass
class MaintenanceRunResult:
    """UW/TW per method for one workload at one deadline."""

    deadline_fraction: float
    fractions: dict[str, float]


@dataclass
class MaintenanceSweepResult:
    """Figure 11: mean UW/TW per method across the deadline sweep."""

    #: Deadline fractions t / t_finish swept.
    fractions: list[float] = field(default_factory=list)
    #: method name -> list of mean UW/TW values aligned with ``fractions``.
    curves: dict[str, list[float]] = field(default_factory=dict)

    def curve(self, method: str) -> list[float]:
        """Mean UW/TW values of one method across the sweep."""
        return self.curves[method]

    def at(self, method: str, fraction: float) -> float:
        """Mean UW/TW of *method* at deadline fraction *fraction*."""
        idx = self.fractions.index(fraction)
        return self.curves[method][idx]


def run_one(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    config: MaintenanceConfig,
    method: str,
) -> float:
    """Execute one method on one workload; return realised UW/TW.

    The theoretical limit is computed analytically from exact information;
    the three real methods run in the simulator via
    :func:`repro.wm.policies.execute_policy`.
    """
    if method == THEORETICAL:
        plan = exact_maintenance_plan(
            queries, deadline, config.processing_rate, config.case
        )
        return plan.unfinished_fraction

    decision = _DECISIONS[method]
    rdbms = SimulatedRDBMS(processing_rate=config.processing_rate)
    totals = {}
    for q in queries:
        job = SyntheticJob(
            q.query_id,
            q.total_cost,
            initial_done=q.completed_work,
        )
        rdbms.submit(job)
        totals[q.query_id] = q.total_cost
    outcome = execute_policy(
        rdbms, decision, deadline, case=config.case, total_costs=totals
    )
    return outcome.unfinished_fraction


def run_maintenance_sweep(
    config: MaintenanceConfig = MaintenanceConfig(),
    deadline_fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
    methods: tuple[str, ...] = (NO_PI, SINGLE_PI, MULTI_PI, THEORETICAL),
) -> MaintenanceSweepResult:
    """Reproduce Figure 11: UW/TW vs ``t / t_finish`` for every method."""
    per_method: dict[str, dict[float, list[float]]] = {
        m: {f: [] for f in deadline_fractions} for m in methods
    }
    for r in range(config.runs):
        rng = random.Random(config.seed + r)
        queries = sample_running_queries(config, rng)
        t_finish = t_finish_of(queries, config.processing_rate)
        for frac in deadline_fractions:
            deadline = frac * t_finish
            for method in methods:
                per_method[method][frac].append(
                    run_one(queries, deadline, config, method)
                )
    result = MaintenanceSweepResult(fractions=list(deadline_fractions))
    for method in methods:
        result.curves[method] = [
            mean(per_method[method][f]) for f in deadline_fractions
        ]
    return result


def reduction_vs(
    result: MaintenanceSweepResult, method: str, baseline: str
) -> list[float]:
    """Relative lost-work reduction of *method* vs *baseline* per fraction.

    ``1 - UW_method / UW_baseline`` where the baseline lost work is positive;
    points where the baseline already loses nothing are reported as 0.
    """
    out = []
    for m_val, b_val in zip(result.curves[method], result.curves[baseline]):
        out.append(1.0 - m_val / b_val if b_val > 1e-12 else 0.0)
    return out


@dataclass
class ExtremeStats:
    """Per-run extremes of the multi-PI method vs a baseline (paper §5.3).

    The paper reports these run-level numbers: "In the extreme case ... the
    multi-query PI method reduces the amount of unfinished work by 73% and
    94% [vs no-PI and single-PI].  In the worst case ... increases the
    amount of unfinished work by 12% and 3%."
    """

    #: Largest per-run relative reduction of UW vs the baseline.
    best_reduction: float
    #: Largest per-run relative *increase* (>= 0; 0 if multi never lost).
    worst_increase: float
    #: Fraction of (run, deadline) points where multi-PI was at least as good.
    win_rate: float


def per_run_extremes(
    config: MaintenanceConfig = MaintenanceConfig(),
    deadline_fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
    baseline: str = NO_PI,
) -> ExtremeStats:
    """Compute the paper's per-run extreme statistics for the multi-PI method."""
    best = 0.0
    worst = 0.0
    wins = 0
    total = 0
    for r in range(config.runs):
        rng = random.Random(config.seed + r)
        queries = sample_running_queries(config, rng)
        t_finish = t_finish_of(queries, config.processing_rate)
        for frac in deadline_fractions:
            deadline = frac * t_finish
            multi = run_one(queries, deadline, config, MULTI_PI)
            base = run_one(queries, deadline, config, baseline)
            total += 1
            if multi <= base + 1e-12:
                wins += 1
            if base > 1e-12:
                best = max(best, 1.0 - multi / base)
                worst = max(worst, multi / base - 1.0)
            elif multi > 1e-12:
                worst = max(worst, 1.0)
    return ExtremeStats(
        best_reduction=best,
        worst_increase=worst,
        win_rate=wins / total if total else 1.0,
    )
