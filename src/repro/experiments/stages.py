"""Paper Figures 1 and 2: the standard-case stage schedule.

* **Figure 1** shows the execution of ``n = 4`` equal-priority queries as a
  staircase of stages; at the end of stage ``i`` query ``Q_i`` finishes and
  the survivors speed up.
* **Figure 2** shows the same four queries with ``Q3`` blocked at time 0:
  the remaining stages shrink, and the per-query work completed in each
  stage is unchanged (the paper's key accounting device in Section 3.1).

These are analytical figures; the experiment recomputes them from
:func:`repro.core.standard_case.standard_case` and checks the blocking
invariants, and the bench renders the schedules as ASCII Gantt rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import QuerySnapshot
from repro.core.standard_case import StandardCaseResult, standard_case

#: The illustrative workload: four equal-priority queries.  Costs are
#: chosen so stage boundaries land at the paper's proportions.
DEFAULT_COSTS = (10.0, 20.0, 30.0, 40.0)


@dataclass
class StageFigure:
    """One rendered stage schedule."""

    result: StandardCaseResult
    blocked: tuple[str, ...] = ()

    def stage_durations(self) -> list[float]:
        """Durations ``t_1 .. t_n`` of the stages."""
        return [s.duration for s in self.result.stages]

    def render(self, width: int = 60) -> str:
        """ASCII Gantt chart: one row per query, one column band per stage."""
        total = self.result.quiescent_time
        if total <= 0:
            return "(empty schedule)"
        lines = []
        queries = sorted(
            {qid for s in self.result.stages for qid in s.running_query_ids}
        )
        for qid in queries:
            row = []
            for stage in self.result.stages:
                cols = max(int(round(stage.duration / total * width)), 1)
                mark = "#" if qid in stage.running_query_ids else " "
                row.append(mark * cols)
            finish = self.result.remaining_times[qid]
            lines.append(f"{qid:>4} |{''.join(row)}| finishes t={finish:g}")
        marks = "stages: " + " ".join(
            f"t{s.index}={s.duration:g}" for s in self.result.stages
        )
        lines.append(marks)
        return "\n".join(lines)


def figure1(costs: tuple[float, ...] = DEFAULT_COSTS,
            processing_rate: float = 1.0) -> StageFigure:
    """The Figure 1 schedule for *costs* (equal priorities)."""
    queries = [QuerySnapshot(f"Q{i + 1}", c) for i, c in enumerate(costs)]
    return StageFigure(result=standard_case(queries, processing_rate))


def figure2(
    costs: tuple[float, ...] = DEFAULT_COSTS,
    blocked: str = "Q3",
    processing_rate: float = 1.0,
) -> StageFigure:
    """The Figure 2 schedule: same queries with one blocked at time 0."""
    queries = [
        QuerySnapshot(f"Q{i + 1}", c)
        for i, c in enumerate(costs)
        if f"Q{i + 1}" != blocked
    ]
    if len(queries) == len(costs):
        raise ValueError(f"blocked query {blocked!r} not in the workload")
    return StageFigure(
        result=standard_case(queries, processing_rate), blocked=(blocked,)
    )


@dataclass
class BlockingComparison:
    """Figure 1 vs Figure 2: the effect of blocking one query."""

    baseline: StageFigure
    blocked: StageFigure
    victim: str

    def speedups(self) -> dict[str, float]:
        """Per-query reduction in remaining time from blocking the victim."""
        out = {}
        for qid, before in self.baseline.result.remaining_times.items():
            if qid == self.victim:
                continue
            after = self.blocked.result.remaining_times[qid]
            out[qid] = before - after
        return out


def compare_blocking(
    costs: tuple[float, ...] = DEFAULT_COSTS,
    victim: str = "Q3",
    processing_rate: float = 1.0,
) -> BlockingComparison:
    """Build both figures and their per-query speed-ups."""
    return BlockingComparison(
        baseline=figure1(costs, processing_rate),
        blocked=figure2(costs, victim, processing_rate),
        victim=victim,
    )
