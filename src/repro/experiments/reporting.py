"""Plain-text rendering of experiment outputs.

Benches print the paper-shaped rows and series through these helpers so the
regenerated "figures" are readable in test logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Fixed-width table with right-aligned numeric cells."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.{precision}f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Sequence[tuple[float, float]],
    max_points: int = 12,
    precision: int = 1,
) -> str:
    """A (time, value) series, downsampled to at most *max_points* rows."""
    if not series:
        return f"{title}: (no data)"
    step = max(len(series) // max_points, 1)
    sampled = list(series[::step])
    if sampled[-1] != series[-1]:
        sampled.append(series[-1])
    lines = [title]
    for t, v in sampled:
        lines.append(f"  t={t:>{8}.{precision}f}  value={v:.{precision}f}")
    return "\n".join(lines)


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> int:
    """Write rows as CSV (for external plotting); returns the row count.

    Values are rendered with ``repr``-free plain formatting; fields
    containing commas or quotes are quoted per RFC 4180.
    """
    import csv

    count = 0
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A crude one-line chart of *values* (useful in bench output)."""
    if not values:
        return ""
    marks = " .:-=+*#%@"
    lo = min(values)
    hi = max(values)
    span = hi - lo or 1.0
    step = max(len(values) // width, 1)
    out = []
    for v in values[::step]:
        idx = int((v - lo) / span * (len(marks) - 1))
        out.append(marks[idx])
    return "".join(out)
