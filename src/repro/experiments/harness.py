"""Wiring progress indicators into a simulated RDBMS run.

:class:`PIHarness` attaches any mix of estimators to a
:class:`~repro.sim.rdbms.SimulatedRDBMS` and samples them on a fixed
interval.  Each sample:

1. feeds every running query's cumulative completed work into its
   single-query speed monitor,
2. asks each attached single-query PI for ``c / s``,
3. asks each attached multi-query PI for its system-wide estimate, and
4. records everything into the run's :class:`~repro.sim.trace.TraceSet`
   under the estimator's name.

Estimator names become the series keys used by the figure benches
(``single-query``, ``multi-query``, ``multi-query-no-queue``, ...).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.projection import BACKENDS
from repro.core.single_query import SingleQueryProgressIndicator
from repro.sim.rdbms import SimulatedRDBMS

#: Canonical estimator names, matching the paper's figure legends.
SINGLE_QUERY = "single-query"
MULTI_QUERY = "multi-query"
MULTI_QUERY_NO_QUEUE = "multi-query-no-queue"
#: Estimates served from the RDBMS's shared incremental schedule (one
#: structure answering every concurrent PI; see ``docs/PERFORMANCE.md``).
SHARED_SCHEDULE = "shared-schedule"


class PIHarness:
    """Attach progress indicators to a simulation and sample them.

    Parameters
    ----------
    rdbms:
        The simulation to observe.
    interval:
        Sampling period, virtual seconds.
    speed_window:
        Window of the single-query PIs' speed monitors, seconds.
    multi_indicators:
        Mapping of series name to a configured
        :class:`MultiQueryProgressIndicator`.  Defaults to one plain
        ``multi-query`` indicator (queue-aware, no forecast).
    with_single:
        Whether to run a per-query single-query PI alongside.
    with_shared_schedule:
        Whether to also record the ``shared-schedule`` series: per-query
        remaining times served directly from the RDBMS's shared
        incremental schedule (:meth:`SimulatedRDBMS.remaining_times`).
        One amortized ``O(log n)``-maintained structure answers every
        running query's PI, instead of each indicator re-solving the
        whole system per sample.
    with_backend_agreement:
        Whether to additionally sample one multi-query PI per projection
        backend (``backend:incremental`` / ``backend:reference`` series),
        feeding the observability layer's backend-agreement telemetry.
        Only meaningful when the RDBMS carries an observability bundle.
    """

    def __init__(
        self,
        rdbms: SimulatedRDBMS,
        interval: float = 1.0,
        speed_window: float = 10.0,
        multi_indicators: dict[str, MultiQueryProgressIndicator] | None = None,
        with_single: bool = True,
        with_shared_schedule: bool = False,
        with_backend_agreement: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.rdbms = rdbms
        self.speed_window = speed_window
        self.with_single = with_single
        self.with_shared_schedule = with_shared_schedule
        if multi_indicators is None:
            multi_indicators = {MULTI_QUERY: MultiQueryProgressIndicator()}
        self.multi_indicators = dict(multi_indicators)
        self._backend_indicators: dict[str, MultiQueryProgressIndicator] = {}
        if with_backend_agreement:
            self._backend_indicators = {
                f"backend:{b}": MultiQueryProgressIndicator(backend=b)
                for b in BACKENDS
            }
        self._single: dict[str, SingleQueryProgressIndicator] = {}
        self._single_attempts: dict[str, int] = {}
        rdbms.add_sampler(interval, self._sample)
        rdbms.on_arrival.append(self._notify_arrival)

    def single_indicator(self, query_id: str) -> SingleQueryProgressIndicator:
        """The per-query single-query PI (created lazily)."""
        if query_id not in self._single:
            self._single[query_id] = SingleQueryProgressIndicator(self.speed_window)
        return self._single[query_id]

    def _notify_arrival(self, time: float, query_id: str) -> None:
        """Feed real arrivals to adaptive forecasters attached to the PIs."""
        job = self.rdbms.record(query_id).job
        for indicator in self.multi_indicators.values():
            indicator.observe_arrival(time, job.estimated_remaining_cost(), job.weight)

    def _record(
        self, rdbms: SimulatedRDBMS, qid: str, name: str, t: float, seconds: float
    ) -> None:
        """Record one estimate into the trace and the accuracy telemetry."""
        rdbms.traces.for_query(qid).record_estimate(name, t, seconds)
        if rdbms.obs is not None:
            rdbms.obs.accuracy.observe(qid, name, t, seconds)

    def _sample(self, rdbms: SimulatedRDBMS) -> None:
        t = rdbms.clock
        if self.with_single:
            for job in rdbms.running:
                # A retried query is a *new* execution: its completed work
                # restarts at the checkpoint (or zero), so the previous
                # attempt's speed samples describe a dead executor.  Give
                # each attempt a fresh monitor instead of feeding it a
                # work regression it would (rightly) reject.
                attempt = rdbms.record(job.query_id).attempts
                if self._single_attempts.get(job.query_id) != attempt:
                    self._single.pop(job.query_id, None)
                    self._single_attempts[job.query_id] = attempt
                pi = self.single_indicator(job.query_id)
                pi.observe(t, job.completed_work)
                est = pi.estimate(t, job.estimated_remaining_cost())
                if est is not None:
                    self._record(
                        rdbms, job.query_id, SINGLE_QUERY, t,
                        est.remaining_seconds,
                    )
        indicators = dict(self.multi_indicators)
        indicators.update(self._backend_indicators)
        if indicators:
            snapshot = rdbms.snapshot()
            for name, indicator in indicators.items():
                estimate = indicator.estimate(snapshot)
                for qid, seconds in estimate.remaining_seconds.items():
                    self._record(rdbms, qid, name, t, seconds)
        if self.with_shared_schedule:
            for qid, seconds in rdbms.remaining_times().items():
                self._record(rdbms, qid, SHARED_SCHEDULE, t, seconds)

    def sample_now(self) -> None:
        """Take one sample immediately (e.g. at time 0 before running)."""
        self._sample(self.rdbms)


def estimate_series(
    rdbms: SimulatedRDBMS, query_id: str, estimator: str
) -> list[tuple[float, float]]:
    """The recorded (time, remaining-seconds) series of one estimator."""
    trace = rdbms.traces[query_id]
    series = trace.estimates.get(estimator)
    if series is None:
        return []
    return list(series)


def actual_remaining_series(
    rdbms: SimulatedRDBMS, query_id: str, times: Iterable[float]
) -> list[tuple[float, float]]:
    """Ground-truth remaining time of *query_id* sampled at *times*."""
    trace = rdbms.traces[query_id]
    return [(t, trace.actual_remaining(t)) for t in times]
