"""Engine-mode MCQ experiment: the paper's prototype fidelity level.

The synthetic MCQ experiment (:mod:`repro.experiments.mcq`) gives the PIs
*exact* remaining costs (Assumption 2).  This variant instead runs the
paper's actual SQL -- ``Q_i`` over Zipf-sized ``part_i`` tables against a
real ``lineitem`` with an index -- through :mod:`repro.engine` executors
timeshared by the simulator.  Remaining costs are now the executor's
*refined estimates*, initial costs come from the optimizer, and estimation
error is real, exactly as in the PostgreSQL prototype of Section 5.

The headline observation must survive this realism: the multi-query
estimate for a large query tracks the truth while the single-query PI
grossly overestimates early (Figure 3's shape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.metrics import relative_error
from repro.experiments.harness import PIHarness
from repro.sim.jobs import EngineJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.queries import engine_job, join_query, scan_query
from repro.workload.tpcr import TpcrConfig, add_part_table, build_lineitem
from repro.engine.database import Database
from repro.workload.zipf import ZipfSampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy


def make_job(db: Database, query_id: str, i: int, config: "EngineMCQConfig") -> EngineJob:
    """Build the ``i``-th workload query, honouring the query mix.

    Every job carries a prepare factory so the retry layer can replan it
    after an injected crash, resuming from the last checkpoint when the
    config sets a ``checkpoint_interval``.
    """
    interval = config.checkpoint_interval
    if config.query_mix and i % 4 == 3:
        sql = join_query(i)
    elif config.query_mix and i % 4 == 0:
        sql = scan_query(i)
    else:
        return engine_job(db, query_id, i, checkpoint_interval=interval)

    def prepare():
        return db.prepare(
            sql,
            checkpoint_interval=interval,
            execution_mode=config.execution_mode,
        )

    return EngineJob(query_id, prepare(), prepare=prepare)


@dataclass(frozen=True)
class EngineMCQConfig:
    """Parameters of the engine-backed MCQ run."""

    n_queries: int = 8
    zipf_a: float = 1.2
    max_size: int = 20
    scale: float = 1 / 4000
    processing_rate: float = 10.0
    sample_interval: float = 2.0
    quantum: float = 0.25
    #: Fraction of each query pre-executed before time 0 (random per query).
    max_head_start: float = 0.6
    #: Mix of query shapes.  The paper notes "We repeated our experiments
    #: with other kinds of queries.  The results were similar"; with
    #: ``query_mix=True`` every third/fourth query is the join / filtered
    #: scan template instead of the correlated-subquery one.
    query_mix: bool = False
    #: Work-preserving checkpoint cadence (U's) for every engine execution,
    #: or None to run without checkpoints.
    checkpoint_interval: float | None = None
    #: ``"batch"`` / ``"row"`` engine execution, or None for the engine
    #: default.  Both modes are work-identical; this switches the
    #: vectorized fast path on or off for the whole run.
    execution_mode: str | None = None
    seed: int = 11


@dataclass
class EngineMCQResult:
    """Traced estimates for the focus (largest) query."""

    focus_query: str
    finish_time: float
    estimates: dict[str, list[tuple[float, float]]]
    initial_costs: dict[str, float]
    final_works: dict[str, float]

    def mean_relative_error(self, estimator: str) -> float:
        """Mean relative error of *estimator* over the focus query's life."""
        series = [
            (t, v)
            for t, v in self.estimates.get(estimator, [])
            if t < self.finish_time
        ]
        if not series:
            raise ValueError(f"no estimates for {estimator!r}")
        errs = [relative_error(v, self.finish_time - t) for t, v in series]
        return sum(errs) / len(errs)

    def cost_estimation_error(self, query_id: str) -> float:
        """How wrong the optimizer's initial cost was: |est - actual| / actual."""
        actual = self.final_works[query_id]
        return abs(self.initial_costs[query_id] - actual) / actual


def build_database(config: EngineMCQConfig) -> tuple[Database, list[int]]:
    """Create the TPC-R data with Zipf-distributed part sizes."""
    rng = random.Random(config.seed)
    tpcr = TpcrConfig(scale=config.scale, seed=config.seed)
    # Decorrelation off: the paper's prototype executed this workload
    # with per-row correlated subplans, and the characteristic optimizer
    # estimation error the experiment measures comes from exactly that
    # plan shape.  (The decorrelated plans estimate near-perfectly.)
    db = Database(
        page_capacity=tpcr.page_capacity,
        execution_mode=config.execution_mode,
        decorrelate=False,
    )
    build_lineitem(db, tpcr, rng)
    sampler = ZipfSampler.over_range(config.zipf_a, config.max_size, rng)
    sizes = [int(sampler.sample()) for _ in range(config.n_queries)]
    for i, n in enumerate(sizes, start=1):
        add_part_table(db, i, n, tpcr, rng)
    db.analyze()
    return db, sizes


@dataclass
class EngineMaintenanceResult:
    """Realised UW/TW per method at prototype fidelity."""

    deadline_fraction: float
    #: method name -> realised unfinished-work fraction.
    fractions: dict[str, float]
    #: Ground-truth total cost per query (from oracle runs), U's.
    true_costs: dict[str, float]


def run_engine_maintenance(
    config: EngineMCQConfig = EngineMCQConfig(),
    deadline_fraction: float = 0.5,
) -> EngineMaintenanceResult:
    """The Figure 11 comparison with *real SQL queries* as the workload.

    Each method sees the executors' refined cost estimates (imperfect);
    realised lost work is accounted against ground-truth costs learned from
    oracle runs of the same deterministic queries.  Because each part table
    gets its own deterministic query, re-preparing the same SQL reproduces
    the same execution for every method -- an apples-to-apples comparison.
    """
    from repro.wm.policies import (
        decide_multi_pi,
        decide_no_pi,
        decide_single_pi,
        execute_policy,
    )

    rng = random.Random(config.seed + 2)
    db, _sizes = build_database(config)

    # Oracle pass: learn each query's true total cost.
    true_costs: dict[str, float] = {}
    for i in range(1, config.n_queries + 1):
        probe = make_job(db, f"oracle_Q{i}", i, config)
        probe.execution.run_to_completion()
        true_costs[f"Q{i}"] = probe.execution.work_done

    head_fractions = [
        rng.uniform(0.0, config.max_head_start)
        for _ in range(config.n_queries)
    ]
    true_remaining = sum(
        true_costs[f"Q{i}"] * (1 - head_fractions[i - 1])
        for i in range(1, config.n_queries + 1)
    )
    t_finish = true_remaining / config.processing_rate
    deadline = deadline_fraction * t_finish

    methods = {
        "no PI": decide_no_pi,
        "single-query PI": decide_single_pi,
        "multi-query PI": decide_multi_pi,
    }
    fractions: dict[str, float] = {}
    for name, decision in methods.items():
        rdbms = SimulatedRDBMS(
            processing_rate=config.processing_rate, quantum=config.quantum
        )
        for i in range(1, config.n_queries + 1):
            job = make_job(db, f"Q{i}", i, config)
            job.execution.step(head_fractions[i - 1] * true_costs[f"Q{i}"])
            rdbms.submit(job)
        outcome = execute_policy(
            rdbms, decision, deadline, total_costs=true_costs
        )
        fractions[name] = outcome.unfinished_fraction

    return EngineMaintenanceResult(
        deadline_fraction=deadline_fraction,
        fractions=fractions,
        true_costs=true_costs,
    )


def run_engine_mcq(
    config: EngineMCQConfig = EngineMCQConfig(),
    fault_plan: "FaultPlan | None" = None,
    retry_policy: "RetryPolicy | None" = None,
) -> EngineMCQResult:
    """Run the engine-backed MCQ experiment.

    With a ``fault_plan`` the run executes under injected faults; pair it
    with a ``retry_policy`` (and a config ``checkpoint_interval``) so
    crashed queries are resubmitted -- resuming from their checkpoints --
    and the experiment still produces a complete report.
    """
    rng = random.Random(config.seed + 1)
    db, _sizes = build_database(config)

    rdbms = SimulatedRDBMS(
        processing_rate=config.processing_rate, quantum=config.quantum
    )
    if retry_policy is not None:
        from repro.faults.retry import RetryController

        RetryController(rdbms, retry_policy)
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector

        FaultInjector(rdbms, fault_plan).arm()
    jobs = []
    initial_costs = {}
    for i in range(1, config.n_queries + 1):
        job = make_job(db, f"Q{i}", i, config)
        initial_costs[job.query_id] = job.estimated_remaining_cost()
        # Random starting point: pre-execute a fraction before time 0.
        head = rng.uniform(0.0, config.max_head_start)
        job.execution.step(head * initial_costs[job.query_id])
        jobs.append(job)

    focus = max(jobs, key=lambda j: j.estimated_remaining_cost()).query_id
    for job in jobs:
        rdbms.submit(job)
    harness = PIHarness(rdbms, interval=config.sample_interval)
    rdbms.run_to_completion(max_time=1e7)
    del harness

    trace = rdbms.traces[focus]
    finish = trace.finished_at
    assert finish is not None
    estimates = {
        name: list(series)
        for name, series in trace.estimates.items()
    }
    # Read final works off the records: a retried query's live job is the
    # resubmitted copy, not the object submitted at time 0.
    final_works = {
        j.query_id: rdbms.record(j.query_id).job.completed_work for j in jobs
    }
    return EngineMCQResult(
        focus_query=focus,
        finish_time=finish,
        estimates=estimates,
        initial_costs=initial_costs,
        final_works=final_works,
    )
