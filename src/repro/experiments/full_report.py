"""One-command reproduction report: every table and figure, one document.

``generate_report`` runs the complete evaluation -- Table 1, Figures 1-11,
the ablations -- and renders a Markdown report with the measured series, so
a fresh checkout can regenerate the data behind ``EXPERIMENTS.md`` with::

    python -m repro report --out REPORT.md

The ``runs`` knob trades averaging quality for wall-clock time.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.experiments.engine_mode import EngineMCQConfig, run_engine_mcq
from repro.experiments.harness import (
    MULTI_QUERY,
    MULTI_QUERY_NO_QUEUE,
    SINGLE_QUERY,
)
from repro.experiments.maintenance import (
    MULTI_PI,
    NO_PI,
    SINGLE_PI,
    THEORETICAL,
    MaintenanceConfig,
    run_maintenance_sweep,
)
from repro.experiments.mcq import MCQConfig, run_mcq
from repro.experiments.naq import run_naq
from repro.experiments.reporting import format_series, format_table
from repro.experiments.scq import (
    SCQConfig,
    run_adaptive_trace,
    run_lambda_sensitivity,
    run_scq_sweep,
)
from repro.experiments.stages import compare_blocking, figure1
from repro.experiments.tables import build_table1
from repro.workload.tpcr import TpcrConfig


@dataclass(frozen=True)
class ReportConfig:
    """Scale of the report's experiment runs."""

    runs: int = 8
    seed: int = 42
    scale: float = 1 / 2000


def generate_report(config: ReportConfig = ReportConfig()) -> str:
    """Run every experiment and return the Markdown report."""
    out = io.StringIO()

    def w(text: str = "") -> None:
        out.write(text + "\n")

    w("# Reproduction report — Multi-query SQL Progress Indicators")
    w()
    w(f"(seeded runs: {config.runs}; regenerate with `python -m repro report`)")

    # ---- Table 1 ---------------------------------------------------------
    w("\n## Table 1 — test data set\n")
    w("```")
    w(build_table1(TpcrConfig(scale=config.scale, seed=1)).render())
    w("```")

    # ---- Figures 1-2 ------------------------------------------------------
    w("\n## Figure 1 — standard-case stage execution (n = 4)\n")
    w("```")
    w(figure1().render())
    w("```")
    cmp = compare_blocking()
    w("\n## Figure 2 — Q3 blocked at time 0\n")
    w("```")
    w(cmp.blocked.render())
    ups = ", ".join(f"{q}: {v:g}s" for q, v in sorted(cmp.speedups().items()))
    w(f"savings vs Figure 1 -- {ups}")
    w("```")

    # ---- Figures 3-4 -------------------------------------------------------
    mcq = run_mcq(MCQConfig(seed=3))
    w("\n## Figures 3 & 4 — MCQ estimates and speed\n")
    w("```")
    w(f"focus {mcq.focus_query}, finishes at t={mcq.finish_time:.1f}s")
    w(format_series("actual remaining", mcq.actual))
    w(format_series("single-query estimate", mcq.estimates[SINGLE_QUERY]))
    w(format_series("multi-query estimate", mcq.estimates[MULTI_QUERY]))
    w(format_series("execution speed (U/s)", mcq.speed, precision=2))
    w("```")

    # ---- Figure 5 ----------------------------------------------------------
    naq = run_naq()
    w("\n## Figure 5 — non-empty admission queue\n")
    w("```")
    w(
        f"Q3 starts t={naq.q3_start:.0f}s, finishes t={naq.q3_finish:.0f}s; "
        f"Q1 finishes t={naq.q1_finish:.0f}s"
    )
    for name in (SINGLE_QUERY, MULTI_QUERY_NO_QUEUE, MULTI_QUERY):
        w(format_series(name, naq.estimates[name]))
    w("```")

    # ---- Figures 6-7 --------------------------------------------------------
    scq = run_scq_sweep(SCQConfig(runs=config.runs, seed=config.seed))
    w("\n## Figures 6 & 7 — SCQ relative error vs lambda\n")
    w("```")
    w(format_table(
        ["lambda", "single last", "multi last", "single avg", "multi avg"],
        scq.as_rows(),
    ))
    w("```")

    # ---- Figures 8-9 ---------------------------------------------------------
    sens = run_lambda_sensitivity(SCQConfig(runs=config.runs, seed=config.seed))
    w("\n## Figures 8 & 9 — wrong lambda' (true lambda = 0.03)\n")
    w("```")
    w(format_table(
        ["lambda'", "single last", "multi last", "single avg", "multi avg"],
        sens.as_rows(),
    ))
    w("```")

    # ---- Figure 10 ------------------------------------------------------------
    trace = run_adaptive_trace(SCQConfig(runs=1, seed=config.seed))
    w("\n## Figure 10 — adaptive correction of a wrong lambda'\n")
    w("```")
    w(f"focus {trace.focus_query}, finishes at t={trace.finish_time:.1f}s")
    for lp, series in trace.series.items():
        w(format_series(f"lambda' = {lp}", series))
    w("```")

    # ---- Figure 11 -------------------------------------------------------------
    sweep = run_maintenance_sweep(MaintenanceConfig(runs=config.runs, seed=7))
    w("\n## Figure 11 — scheduled maintenance (UW/TW, Case 2)\n")
    w("```")
    rows = [
        [frac]
        + [sweep.curves[m][i] for m in (NO_PI, SINGLE_PI, MULTI_PI, THEORETICAL)]
        for i, frac in enumerate(sweep.fractions)
    ]
    w(format_table(
        ["t/t_finish", NO_PI, SINGLE_PI, MULTI_PI, THEORETICAL], rows
    ))
    w("```")

    # ---- Prototype fidelity ------------------------------------------------------
    em = run_engine_mcq(EngineMCQConfig())
    w("\n## Prototype fidelity — MCQ on real SQL executions\n")
    w("```")
    w(
        f"mean relative error: single={em.mean_relative_error(SINGLE_QUERY):.2f} "
        f"multi={em.mean_relative_error(MULTI_QUERY):.2f}"
    )
    w(format_table(
        ["query", "optimizer est (U)", "actual (U)"],
        [
            (qid, em.initial_costs[qid], em.final_works[qid])
            for qid in sorted(em.initial_costs)
        ],
    ))
    w("```")

    return out.getvalue()
