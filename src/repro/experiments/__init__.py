"""Experiment drivers reproducing the paper's evaluation (Section 5).

Each module runs one experiment end-to-end on the simulated RDBMS and
returns structured results the benchmark suite renders as the paper's
tables/figures:

* :mod:`repro.experiments.harness` -- attaches single-/multi-query PIs to a
  running simulation and records their estimates over time.
* :mod:`repro.experiments.mcq` -- Multiple Concurrent Query experiment
  (Figures 3 and 4).
* :mod:`repro.experiments.naq` -- Non-empty Admission Queue experiment
  (Figure 5).
* :mod:`repro.experiments.scq` -- Stream Concurrent Query experiment
  (Figures 6-10).
* :mod:`repro.experiments.maintenance` -- scheduled-maintenance workload
  management experiment (Figure 11).
* :mod:`repro.experiments.tables` -- the Table 1 dataset summary.
* :mod:`repro.experiments.reporting` -- plain-text table/series rendering.
"""

from repro.experiments.harness import PIHarness

__all__ = ["PIHarness"]
