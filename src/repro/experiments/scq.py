"""The Stream Concurrent Query (SCQ) experiment (paper Section 5.2.3).

At time 0 ten queries are running, each at a random point of its execution;
new queries keep arriving according to a Poisson process with rate
``lambda``.  All query sizes follow Zipf(``a = 2.2``).  For each initial
query the PIs estimate, *at time 0*, its remaining execution time; the
relative error ``|t_est - t_actual| / t_actual`` is measured against the
simulated truth.

Reproduced figures:

* **Figure 6** -- relative error vs ``lambda`` for the *last finishing*
  query (single- vs multi-query PI, exact ``lambda``/``c̄`` known).
* **Figure 7** -- same, averaged over all ten initial queries.
* **Figure 8 / 9** -- the multi-query PI is fed a wrong rate
  ``lambda' != lambda`` (``lambda = 0.03``): error vs ``lambda'``.
* **Figure 10** -- remaining-time estimates over time for the last
  finishing query under wrong ``lambda'``, with the adaptive forecaster
  correcting the error as real arrivals are observed.

Implementation notes
--------------------
The time-0 estimates do not influence execution, so each simulated run is
evaluated under arbitrarily many ``lambda'`` values without re-simulation.
Arrivals are generated lazily in horizon chunks until every initial query
has finished; in the unstable regime (``lambda * c̄ > C``) generation stops
after ``max_horizon_factor`` times the nominal drain time -- a documented
simulation bound that only matters far above saturation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.forecast import AdaptiveForecaster, WorkloadForecast
from repro.core.metrics import mean, relative_error
from repro.core.model import SystemSnapshot
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.experiments.harness import PIHarness
from repro.sim.arrivals import ArrivalSchedule, poisson_arrival_times
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class SCQConfig:
    """Parameters of the SCQ experiment (paper defaults)."""

    n_initial: int = 10
    zipf_a: float = 2.2
    max_size: int = 100
    processing_rate: float = 1.0
    #: Work per unit of size.  ``None`` calibrates so the system saturates at
    #: ``lambda ~= 0.07`` exactly as in the paper (``c̄ = C / 0.07``).
    cost_per_size: float | None = None
    saturation_lambda: float = 0.07
    #: Arrival-horizon chunk, as a multiple of the nominal drain time.
    horizon_factor: float = 2.0
    #: Stop generating arrivals beyond this multiple of the nominal drain
    #: time (bounds unstable-regime runs).
    max_horizon_factor: float = 40.0
    runs: int = 30
    seed: int = 42


def calibrated_cost_per_size(config: SCQConfig) -> float:
    """Work per size unit such that saturation falls at ``saturation_lambda``.

    The system saturates when ``lambda * c̄ = C``; with Zipf-mean size ``m``
    this gives ``cost_per_size = C / (saturation_lambda * m)``.
    """
    if config.cost_per_size is not None:
        return config.cost_per_size
    sampler = ZipfSampler.over_range(config.zipf_a, config.max_size)
    return config.processing_rate / (config.saturation_lambda * sampler.mean())


def mean_arrival_cost(config: SCQConfig) -> float:
    """The exact average cost ``c̄`` of arriving queries, in U's."""
    sampler = ZipfSampler.over_range(config.zipf_a, config.max_size)
    return sampler.mean() * calibrated_cost_per_size(config)


@dataclass
class SCQRun:
    """One simulated SCQ run: ground truth plus the time-0 system state."""

    snapshot0: SystemSnapshot
    speeds0: dict[str, float]
    actual_finish: dict[str, float]
    initial_ids: tuple[str, ...]
    arrival_times: list[float]

    @property
    def last_finishing(self) -> str:
        """The initial query that finished last."""
        return max(self.initial_ids, key=lambda q: self.actual_finish[q])


def simulate_scq_run(config: SCQConfig, lam: float, seed: int) -> SCQRun:
    """Simulate one run at arrival rate *lam*; return ground truth."""
    rng = random.Random(seed)
    cps = calibrated_cost_per_size(config)
    sizes = ZipfSampler.over_range(config.zipf_a, config.max_size, rng)

    rdbms = SimulatedRDBMS(processing_rate=config.processing_rate)
    initial: list[SyntheticJob] = []
    for i in range(config.n_initial):
        cost = sizes.sample() * cps
        done = rng.uniform(0.0, 0.95) * cost
        job = SyntheticJob(f"Q{i + 1}", cost, initial_done=done)
        initial.append(job)
        rdbms.submit(job)
    initial_ids = tuple(j.query_id for j in initial)

    nominal_drain = (
        sum(j.estimated_remaining_cost() for j in initial) / config.processing_rate
    )
    nominal_drain = max(nominal_drain, 1.0)

    snapshot0 = rdbms.snapshot()
    speeds0 = rdbms.current_speeds()

    # Lazy arrival generation in horizon chunks.
    arrival_times: list[float] = []
    seq = 0
    horizon = 0.0

    def extend_arrivals(upto: float) -> None:
        nonlocal horizon, seq
        if lam <= 0 or upto <= horizon:
            return
        times = poisson_arrival_times(lam, upto - horizon, rng)
        schedule = ArrivalSchedule()
        for t in times:
            seq += 1
            when = horizon + t
            cost = sizes.sample() * cps

            def factory(cost: float = cost, k: int = seq) -> SyntheticJob:
                return SyntheticJob(f"A{k}", cost)

            schedule.add(when, factory)
            arrival_times.append(when)
        rdbms.schedule(schedule)
        horizon = upto

    chunk = config.horizon_factor * nominal_drain
    max_horizon = config.max_horizon_factor * nominal_drain
    extend_arrivals(min(chunk, max_horizon))

    def initial_done() -> bool:
        return all(rdbms.record(q).status == "finished" for q in initial_ids)

    while not initial_done():
        rdbms.run_until(rdbms.clock + chunk)
        if not initial_done() and lam > 0 and horizon < max_horizon:
            extend_arrivals(min(horizon + chunk, max_horizon))

    actual = {
        q: rdbms.traces[q].finished_at
        for q in initial_ids
    }
    return SCQRun(
        snapshot0=snapshot0,
        speeds0=speeds0,
        actual_finish=actual,  # type: ignore[arg-type]
        initial_ids=initial_ids,
        arrival_times=arrival_times,
    )


@dataclass
class SCQErrors:
    """Relative errors of both PIs on one run."""

    single: dict[str, float]
    multi: dict[str, float]
    last_finishing: str

    def single_last(self) -> float:
        """Single-query relative error for the last finishing query."""
        return self.single[self.last_finishing]

    def multi_last(self) -> float:
        """Multi-query relative error for the last finishing query."""
        return self.multi[self.last_finishing]

    def single_avg(self) -> float:
        """Single-query relative error averaged over the initial queries."""
        return mean(self.single.values())

    def multi_avg(self) -> float:
        """Multi-query relative error averaged over the initial queries."""
        return mean(self.multi.values())


def evaluate_run(
    run: SCQRun,
    forecast: WorkloadForecast | None,
) -> SCQErrors:
    """Compute both PIs' time-0 relative errors for one simulated run.

    ``forecast`` is what the multi-query PI believes about future arrivals
    (exact, wrong, or ``None`` for no forecasting); the single-query PI by
    definition uses only the current speed.
    """
    single: dict[str, float] = {}
    multi_pi = MultiQueryProgressIndicator(forecast=forecast)
    estimate = multi_pi.estimate(run.snapshot0)
    multi: dict[str, float] = {}
    for qid in run.initial_ids:
        actual = run.actual_finish[qid]
        q = run.snapshot0.find(qid)
        speed = run.speeds0[qid]
        if actual <= 0:
            continue
        single[qid] = relative_error(q.remaining_cost / speed, actual)
        multi[qid] = relative_error(estimate.for_query(qid), actual)
    last = run.last_finishing
    return SCQErrors(single=single, multi=multi, last_finishing=last)


@dataclass
class SCQSweepPoint:
    """Aggregated errors at one arrival rate (or one ``lambda'``)."""

    lam: float
    single_last: float
    multi_last: float
    single_avg: float
    multi_avg: float


@dataclass
class SCQSweepResult:
    """A full sweep: one :class:`SCQSweepPoint` per x-axis value."""

    points: list[SCQSweepPoint] = field(default_factory=list)

    def as_rows(self) -> list[tuple[float, float, float, float, float]]:
        """Rows of (x, single_last, multi_last, single_avg, multi_avg)."""
        return [
            (p.lam, p.single_last, p.multi_last, p.single_avg, p.multi_avg)
            for p in self.points
        ]


def run_scq_sweep(
    config: SCQConfig = SCQConfig(),
    lambdas: tuple[float, ...] = (0.0, 0.02, 0.04, 0.06, 0.08, 0.12, 0.16, 0.2),
) -> SCQSweepResult:
    """Figures 6 and 7: error vs arrival rate, exact forecast."""
    c_bar = mean_arrival_cost(config)
    result = SCQSweepResult()
    for lam in lambdas:
        errors = []
        for r in range(config.runs):
            run = simulate_scq_run(
                config, lam, seed=config.seed + 1000 * r + int(lam * 1e6) % 997
            )
            forecast = (
                WorkloadForecast(arrival_rate=lam, average_cost=c_bar)
                if lam > 0
                else None
            )
            errors.append(evaluate_run(run, forecast))
        result.points.append(
            SCQSweepPoint(
                lam=lam,
                single_last=mean(e.single_last() for e in errors),
                multi_last=mean(e.multi_last() for e in errors),
                single_avg=mean(e.single_avg() for e in errors),
                multi_avg=mean(e.multi_avg() for e in errors),
            )
        )
    return result


def run_lambda_sensitivity(
    config: SCQConfig = SCQConfig(),
    true_lambda: float = 0.03,
    lambda_primes: tuple[float, ...] = (0.0, 0.01, 0.03, 0.05, 0.08, 0.12, 0.16, 0.2),
) -> SCQSweepResult:
    """Figures 8 and 9: the multi-query PI believes ``lambda'``, not ``lambda``.

    The same simulated runs (at the true rate) are re-evaluated under every
    ``lambda'``; the single-query PI's error is constant across the sweep by
    construction, exactly as in the paper's figures.
    """
    c_bar = mean_arrival_cost(config)
    runs = [
        simulate_scq_run(config, true_lambda, seed=config.seed + 1000 * r)
        for r in range(config.runs)
    ]
    result = SCQSweepResult()
    for lp in lambda_primes:
        forecast = (
            WorkloadForecast(arrival_rate=lp, average_cost=c_bar) if lp > 0 else None
        )
        errors = [evaluate_run(run, forecast) for run in runs]
        result.points.append(
            SCQSweepPoint(
                lam=lp,
                single_last=mean(e.single_last() for e in errors),
                multi_last=mean(e.multi_last() for e in errors),
                single_avg=mean(e.single_avg() for e in errors),
                multi_avg=mean(e.multi_avg() for e in errors),
            )
        )
    return result


@dataclass
class AdaptiveTraceResult:
    """Figure 10: multi-query estimates over time under a wrong ``lambda'``."""

    focus_query: str
    finish_time: float
    #: Per-lambda' series of (time, estimated remaining seconds).
    series: dict[float, list[tuple[float, float]]]

    def final_error(self, lambda_prime: float) -> float:
        """Relative error of the last estimate before completion."""
        pts = [p for p in self.series[lambda_prime] if p[0] < self.finish_time]
        if not pts:
            raise ValueError("no estimates before completion")
        t, est = pts[-1]
        return relative_error(est, self.finish_time - t)

    def initial_error(self, lambda_prime: float) -> float:
        """Relative error of the first recorded estimate."""
        pts = self.series[lambda_prime]
        if not pts:
            raise ValueError("no estimates recorded")
        t, est = pts[0]
        return relative_error(est, max(self.finish_time - t, 1e-9))


def run_adaptive_trace(
    config: SCQConfig = SCQConfig(),
    true_lambda: float = 0.03,
    lambda_primes: tuple[float, ...] = (0.04, 0.05),
    sample_interval: float = 2.0,
    seed_offset: int = 7,
    adaptive: bool = True,
) -> AdaptiveTraceResult:
    """Figure 10: one run, traced estimates under wrong ``lambda'`` values.

    With ``adaptive=True`` each multi-query PI carries an
    :class:`AdaptiveForecaster` seeded with the wrong prior; observed
    arrivals pull the blended rate towards the truth over time.
    """
    c_bar = mean_arrival_cost(config)
    seed = config.seed + seed_offset

    # First pass: find the last finishing query and the ground truth.
    probe = simulate_scq_run(config, true_lambda, seed=seed)
    focus = probe.last_finishing

    # Second pass: identical run (same seed) with PIs attached.
    series: dict[float, list[tuple[float, float]]] = {}
    finish_time = probe.actual_finish[focus]
    for lp in lambda_primes:
        rerun = _traced_scq_run(
            config, true_lambda, seed, focus, lp, c_bar, sample_interval, adaptive
        )
        series[lp] = rerun
    return AdaptiveTraceResult(
        focus_query=focus, finish_time=finish_time, series=series
    )


def _traced_scq_run(
    config: SCQConfig,
    lam: float,
    seed: int,
    focus: str,
    lambda_prime: float,
    c_bar: float,
    sample_interval: float,
    adaptive: bool,
) -> list[tuple[float, float]]:
    """Re-simulate a run (same seed) sampling the multi-query PI over time."""
    rng = random.Random(seed)
    cps = calibrated_cost_per_size(config)
    sizes = ZipfSampler.over_range(config.zipf_a, config.max_size, rng)

    rdbms = SimulatedRDBMS(processing_rate=config.processing_rate)
    initial_ids = []
    for i in range(config.n_initial):
        cost = sizes.sample() * cps
        done = rng.uniform(0.0, 0.95) * cost
        rdbms.submit(SyntheticJob(f"Q{i + 1}", cost, initial_done=done))
        initial_ids.append(f"Q{i + 1}")

    nominal_drain = max(
        sum(j.estimated_remaining_cost() for j in rdbms.running)
        / config.processing_rate,
        1.0,
    )

    prior = WorkloadForecast(arrival_rate=lambda_prime, average_cost=c_bar)
    indicator = (
        MultiQueryProgressIndicator(forecaster=AdaptiveForecaster(prior))
        if adaptive
        else MultiQueryProgressIndicator(forecast=prior)
    )
    harness = PIHarness(
        rdbms,
        interval=sample_interval,
        with_single=False,
        multi_indicators={"multi-query": indicator},
    )

    # Same chunked arrival generation as simulate_scq_run (same rng order).
    horizon = 0.0
    seq = 0
    chunk = config.horizon_factor * nominal_drain
    max_horizon = config.max_horizon_factor * nominal_drain

    def extend(upto: float) -> None:
        nonlocal horizon, seq
        if lam <= 0 or upto <= horizon:
            return
        times = poisson_arrival_times(lam, upto - horizon, rng)
        schedule = ArrivalSchedule()
        for t in times:
            seq += 1
            when = horizon + t
            cost = sizes.sample() * cps

            def factory(cost: float = cost, k: int = seq) -> SyntheticJob:
                return SyntheticJob(f"A{k}", cost)

            schedule.add(when, factory)
        rdbms.schedule(schedule)
        horizon = upto

    extend(min(chunk, max_horizon))
    while not all(rdbms.record(q).status == "finished" for q in initial_ids):
        rdbms.run_until(rdbms.clock + chunk)
        if horizon < max_horizon:
            extend(min(horizon + chunk, max_horizon))

    del harness
    trace = rdbms.traces[focus]
    fin = trace.finished_at or rdbms.clock
    est = trace.estimates.get("multi-query")
    return [(t, v) for t, v in est if t <= fin] if est else []
