"""Trace recording: the time series the experiments and figures plot.

Each query accumulates a :class:`QueryTrace` -- its completed-work curve,
observed speed samples and per-estimator remaining-time estimates -- and a
:class:`TraceSet` holds them per run.  Figures 3-5 and 10 of the paper are
direct renderings of these series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import StepSeries


@dataclass(frozen=True)
class FaultEvent:
    """One resilience-relevant event in a query's lifetime.

    Recorded by the simulator and the fault-injection layer: runtime
    errors, injected crashes and stalls, stats corruption, retries,
    watchdog actions.  ``kind`` is a short machine-readable tag
    (``"runtime-error"``, ``"crash"``, ``"stall-begin"``, ``"retry"``,
    ...); ``detail`` is free-form human-readable context.
    """

    time: float
    kind: str
    detail: str = ""


@dataclass
class QueryTrace:
    """All recorded series for one query."""

    query_id: str
    #: Time the query was submitted to the RDBMS.
    submitted_at: float = 0.0
    #: Time the query started running (left the admission queue).
    started_at: float | None = None
    #: Time the query finished, or None if aborted / still running.
    finished_at: float | None = None
    #: Time the query was aborted by a workload-management action, if it was.
    #: Distinct from ``failed_at``: an abort is an intentional decision.
    aborted_at: float | None = None
    #: Time the query last failed with a runtime error (engine error or
    #: injected crash), if it ever did.  Cleared markers are never rewound:
    #: a retried query keeps the time of its most recent failure here and
    #: the full history in ``fault_events``.
    failed_at: float | None = None
    #: Number of execution attempts so far (1 = never retried).
    attempts: int = 1
    #: Per-failure work accounting, one entry per failed attempt: the U's
    #: carried over into the next attempt via a checkpoint (preserved)
    #: and the U's redone or discarded (lost).  A give-up records its
    #: final all-lost entry here too.
    work_preserved: list[float] = field(default_factory=list)
    work_lost: list[float] = field(default_factory=list)
    #: Resilience events: failures, injected faults, retries, WM actions.
    fault_events: list[FaultEvent] = field(default_factory=list)
    #: Cumulative completed work (U's) over time.  With retries the series
    #: can step back down: each new attempt redoes the lost work from zero.
    work: StepSeries = field(default_factory=StepSeries)
    #: Observed execution speed (U/s) over time.
    speed: StepSeries = field(default_factory=StepSeries)
    #: Remaining-time estimates per estimator name, (time, seconds) series.
    estimates: dict[str, StepSeries] = field(default_factory=dict)

    def record_estimate(self, estimator: str, time: float, seconds: float) -> None:
        """Append one remaining-time estimate from *estimator*."""
        self.estimates.setdefault(estimator, StepSeries()).append(time, seconds)

    def record_fault(self, time: float, kind: str, detail: str = "") -> None:
        """Append one :class:`FaultEvent` to this query's history."""
        self.fault_events.append(FaultEvent(time=time, kind=kind, detail=detail))

    def record_attempt_work(self, preserved: float, lost: float) -> None:
        """Account one failed attempt's work: carried over vs discarded."""
        if preserved < 0 or lost < 0:
            raise ValueError("preserved and lost work must be >= 0")
        self.work_preserved.append(preserved)
        self.work_lost.append(lost)

    @property
    def preserved_work(self) -> float:
        """Total U's carried across retries via checkpoints."""
        return sum(self.work_preserved)

    @property
    def wasted_work(self) -> float:
        """Total U's performed by failed attempts and then discarded.

        Conservation: the gross work a query's attempts performed equals
        the last attempt's completed work plus ``wasted_work``.
        """
        return sum(self.work_lost)

    def actual_remaining(self, time: float) -> float:
        """Ground-truth remaining execution time at *time*.

        Only defined for queries that finished; raises otherwise.
        """
        if self.finished_at is None:
            raise ValueError(f"query {self.query_id!r} did not finish")
        return max(self.finished_at - time, 0.0)

    @property
    def response_time(self) -> float | None:
        """Submission-to-finish latency, if the query finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait(self) -> float | None:
        """Time spent in the admission queue, if the query ever started."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


@dataclass
class TraceSet:
    """Traces for every query in one simulated run."""

    queries: dict[str, QueryTrace] = field(default_factory=dict)

    def for_query(self, query_id: str) -> QueryTrace:
        """Get (or create) the trace of *query_id*."""
        if query_id not in self.queries:
            self.queries[query_id] = QueryTrace(query_id=query_id)
        return self.queries[query_id]

    def __contains__(self, query_id: str) -> bool:
        return query_id in self.queries

    def __getitem__(self, query_id: str) -> QueryTrace:
        return self.queries[query_id]

    def finished_queries(self) -> list[QueryTrace]:
        """Traces of queries that ran to completion, by finish time."""
        done = [t for t in self.queries.values() if t.finished_at is not None]
        return sorted(done, key=lambda t: t.finished_at)

    def last_finishing(self) -> QueryTrace:
        """The query that finished last (paper Section 5.2.3)."""
        done = self.finished_queries()
        if not done:
            raise ValueError("no query finished")
        return done[-1]
