"""Trace recording: the time series the experiments and figures plot.

Each query accumulates a :class:`QueryTrace` -- its completed-work curve,
observed speed samples and per-estimator remaining-time estimates -- and a
:class:`TraceSet` holds them per run.  Figures 3-5 and 10 of the paper are
direct renderings of these series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import StepSeries


@dataclass(frozen=True)
class FaultEvent:
    """One resilience-relevant event in a query's lifetime.

    Recorded by the simulator and the fault-injection layer: runtime
    errors, injected crashes and stalls, stats corruption, retries,
    watchdog actions.  ``kind`` is a short machine-readable tag
    (``"runtime-error"``, ``"crash"``, ``"stall-begin"``, ``"retry"``,
    ...); ``detail`` is free-form human-readable context.
    """

    time: float
    kind: str
    detail: str = ""


@dataclass
class QueryTrace:
    """All recorded series for one query."""

    query_id: str
    #: Time the query was submitted to the RDBMS.
    submitted_at: float = 0.0
    #: Time the query started running (left the admission queue).
    started_at: float | None = None
    #: Time the query finished, or None if aborted / still running.
    finished_at: float | None = None
    #: Time the query was aborted by a workload-management action, if it was.
    #: Distinct from ``failed_at``: an abort is an intentional decision.
    aborted_at: float | None = None
    #: Time the query last failed with a runtime error (engine error or
    #: injected crash), if it ever did.  Cleared markers are never rewound:
    #: a retried query keeps the time of its most recent failure here and
    #: the full history in ``fault_events``.
    failed_at: float | None = None
    #: Number of execution attempts so far (1 = never retried).
    attempts: int = 1
    #: Resilience events: failures, injected faults, retries, WM actions.
    fault_events: list[FaultEvent] = field(default_factory=list)
    #: Cumulative completed work (U's) over time.  With retries the series
    #: can step back down: each new attempt redoes the lost work from zero.
    work: StepSeries = field(default_factory=StepSeries)
    #: Observed execution speed (U/s) over time.
    speed: StepSeries = field(default_factory=StepSeries)
    #: Remaining-time estimates per estimator name, (time, seconds) series.
    estimates: dict[str, StepSeries] = field(default_factory=dict)

    def record_estimate(self, estimator: str, time: float, seconds: float) -> None:
        """Append one remaining-time estimate from *estimator*."""
        self.estimates.setdefault(estimator, StepSeries()).append(time, seconds)

    def record_fault(self, time: float, kind: str, detail: str = "") -> None:
        """Append one :class:`FaultEvent` to this query's history."""
        self.fault_events.append(FaultEvent(time=time, kind=kind, detail=detail))

    def actual_remaining(self, time: float) -> float:
        """Ground-truth remaining execution time at *time*.

        Only defined for queries that finished; raises otherwise.
        """
        if self.finished_at is None:
            raise ValueError(f"query {self.query_id!r} did not finish")
        return max(self.finished_at - time, 0.0)

    @property
    def response_time(self) -> float | None:
        """Submission-to-finish latency, if the query finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait(self) -> float | None:
        """Time spent in the admission queue, if the query ever started."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


@dataclass
class TraceSet:
    """Traces for every query in one simulated run."""

    queries: dict[str, QueryTrace] = field(default_factory=dict)

    def for_query(self, query_id: str) -> QueryTrace:
        """Get (or create) the trace of *query_id*."""
        if query_id not in self.queries:
            self.queries[query_id] = QueryTrace(query_id=query_id)
        return self.queries[query_id]

    def __contains__(self, query_id: str) -> bool:
        return query_id in self.queries

    def __getitem__(self, query_id: str) -> QueryTrace:
        return self.queries[query_id]

    def finished_queries(self) -> list[QueryTrace]:
        """Traces of queries that ran to completion, by finish time."""
        done = [t for t in self.queries.values() if t.finished_at is not None]
        return sorted(done, key=lambda t: t.finished_at)

    def last_finishing(self) -> QueryTrace:
        """The query that finished last (paper Section 5.2.3)."""
        done = self.finished_queries()
        if not done:
            raise ValueError("no query finished")
        return done[-1]
