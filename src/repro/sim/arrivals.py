"""Arrival processes for the simulated RDBMS.

The SCQ experiment (paper Section 5.2.3) submits new queries "according to a
Poisson process with parameter lambda"; this module generates such arrival
times deterministically from a seed, plus scripted schedules for the NAQ and
maintenance experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.sim.jobs import Job


def poisson_arrival_times(
    rate: float, horizon: float, seed: int | random.Random = 0
) -> list[float]:
    """Arrival times of a Poisson process with *rate*, within ``[0, horizon]``.

    Inter-arrival gaps are i.i.d. exponential with mean ``1 / rate``.  A rate
    of zero yields no arrivals.
    """
    if rate < 0:
        raise ValueError("rate must be >= 0")
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    if rate == 0:
        return []
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    times: list[float] = []
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) / rate
        if t > horizon:
            return times
        times.append(t)


def burst_arrival_times(
    time: float, n: int, spread: float = 0.0, seed: int | random.Random = 0
) -> list[float]:
    """Arrival times of an *n*-query burst starting at *time*.

    With ``spread == 0`` all *n* arrivals land at exactly *time* (the
    thundering-herd worst case).  With a positive spread the arrivals
    are jittered uniformly over ``[time, time + spread]``, sorted so the
    returned list is non-decreasing.  Deterministic per *seed*: the same
    inputs always produce the same times, so storm experiments replay
    byte-identically.
    """
    if not math.isfinite(time) or time < 0:
        raise ValueError(f"time must be finite and >= 0, got {time}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not math.isfinite(spread) or spread < 0:
        raise ValueError(f"spread must be finite and >= 0, got {spread}")
    if spread == 0:
        return [time] * n
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    return sorted(time + rng.random() * spread for _ in range(n))


@dataclass
class ArrivalSchedule:
    """An ordered list of ``(time, job factory)`` submissions.

    Job factories defer job construction until submission time so that
    schedules can be replayed across runs (engine executions, in particular,
    cannot be reused once run).
    """

    entries: list[tuple[float, Callable[[], Job]]] = field(default_factory=list)

    def add(self, time: float, factory: Callable[[], Job]) -> None:
        """Schedule one submission at *time*."""
        if time < 0:
            raise ValueError("time must be >= 0")
        self.entries.append((time, factory))

    def add_poisson(
        self,
        rate: float,
        horizon: float,
        factory: Callable[[int], Job],
        seed: int | random.Random = 0,
    ) -> list[float]:
        """Add Poisson arrivals on ``[0, horizon]``; *factory* gets an index.

        Returns the generated arrival times (useful for feeding the PI's
        online arrival-rate estimator with ground truth).
        """
        times = poisson_arrival_times(rate, horizon, seed)
        for i, t in enumerate(times):
            # Bind i by default-arg to avoid the late-binding closure trap.
            self.entries.append((t, lambda i=i: factory(i)))
        return times

    def add_burst(
        self,
        time: float,
        n: int,
        factory: Callable[[int], Job],
        spread: float = 0.0,
        seed: int | random.Random = 0,
    ) -> list[float]:
        """Add an *n*-query burst at *time*; *factory* gets an index.

        The overload-storm shape: *n* arrivals landing together (or
        jittered over ``[time, time + spread]`` when *spread* is
        positive).  Index ``i`` maps to the ``i``-th earliest arrival,
        so ordering is deterministic under a fixed *seed*.  Returns the
        generated arrival times.
        """
        times = burst_arrival_times(time, n, spread, seed)
        for i, t in enumerate(times):
            # Bind i by default-arg to avoid the late-binding closure trap.
            self.entries.append((t, lambda i=i: factory(i)))
        return times

    def sorted_entries(self) -> list[tuple[float, Callable[[], Job]]]:
        """Entries in submission order (stable for equal times)."""
        return sorted(self.entries, key=lambda e: e[0])

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[float, Callable[[], Job]]]:
        return iter(self.sorted_entries())
