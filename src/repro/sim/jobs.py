"""Job abstractions executed by the simulated RDBMS.

A *job* is one query's worth of work.  The simulator only needs four things
from a job: how much work it has done, an estimate of what remains, a way to
push it forward by some amount of work, and whether it has finished.

Two families are provided:

* :class:`SyntheticJob` -- the cost is an exact, known number of U's.  This
  realises the paper's Assumption 2 (perfect knowledge of remaining cost)
  and is what the analytical experiments use.
* :class:`EngineJob` -- wraps a steppable :mod:`repro.engine` execution whose
  *true* remaining work is unknown until it finishes; the job reports the
  engine progress tracker's refined estimate instead.  This reproduces the
  realistic regime where PI inputs are imprecise (paper Section 4).

:class:`CostNoiseJob` decorates any job with multiplicative estimation error
for the assumption-violation ablations.
"""

from __future__ import annotations

import abc
from typing import Callable, TYPE_CHECKING

from repro.core.model import QuerySnapshot, weight_for_priority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.executor import QueryExecution


class Job(abc.ABC):
    """One query's work, as scheduled by the simulator."""

    def __init__(
        self,
        query_id: str,
        priority: int = 0,
        weight: float | None = None,
        deadline: float | None = None,
    ):
        self.query_id = query_id
        self.priority = priority
        self.weight = weight_for_priority(priority) if weight is None else float(weight)
        if self.weight <= 0:
            raise ValueError("weight must be > 0")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 seconds")
        #: Relative deadline in seconds from submission, or None.  The
        #: simulated RDBMS converts it to an absolute expiry at submit
        #: time and aborts the query when it passes.
        self.deadline = deadline

    @property
    @abc.abstractmethod
    def completed_work(self) -> float:
        """Work completed so far, in U's."""

    @property
    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether the job has run to completion."""

    @abc.abstractmethod
    def estimated_remaining_cost(self) -> float:
        """Best current estimate of the remaining work, in U's.

        For synthetic jobs this is exact; for engine jobs it is the refined
        optimizer estimate and may be wrong.
        """

    @abc.abstractmethod
    def advance(self, work: float) -> float:
        """Execute up to *work* U's; return the work actually consumed.

        Returns less than *work* only when the job finishes mid-grant.
        """

    def memory_pressure_events(self) -> int:
        """Memory-governance incidents so far (engine jobs override)."""
        return 0

    def snapshot(self) -> QuerySnapshot:
        """This job as a :class:`QuerySnapshot` for the PI algorithms."""
        return QuerySnapshot(
            query_id=self.query_id,
            remaining_cost=max(self.estimated_remaining_cost(), 0.0),
            completed_work=self.completed_work,
            weight=self.weight,
            priority=self.priority,
            memory_pressure=self.memory_pressure_events(),
        )

    def retry_copy(self) -> "Job":
        """A fresh, zero-progress copy of this job for retry resubmission.

        Used by the retry layer after a runtime failure: the failed attempt's
        partial work is lost and the query starts over.  Job types whose
        execution state cannot be recreated (engine-backed jobs hold a live
        executor) raise :class:`NotImplementedError`; callers then must
        supply an explicit job factory to the retry controller.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot be restarted automatically; "
            "pass an explicit job_factory to the retry controller"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.query_id!r} "
            f"done={self.completed_work:.1f} rem~{self.estimated_remaining_cost():.1f}>"
        )


class SyntheticJob(Job):
    """A job with an exactly known total cost in U's.

    With a ``checkpoint_interval`` the job models work-preserving
    checkpoints every so many U's: a retry copy restarts from the last
    interval mark below the crash point instead of from zero.
    """

    def __init__(
        self,
        query_id: str,
        cost: float,
        priority: int = 0,
        weight: float | None = None,
        initial_done: float = 0.0,
        deadline: float | None = None,
        checkpoint_interval: float | None = None,
    ) -> None:
        super().__init__(query_id, priority, weight, deadline=deadline)
        if cost < 0:
            raise ValueError("cost must be >= 0")
        if not 0.0 <= initial_done <= cost:
            raise ValueError("initial_done must be within [0, cost]")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be > 0")
        self.total_cost = float(cost)
        self.checkpoint_interval = checkpoint_interval
        self._done = float(initial_done)

    @property
    def completed_work(self) -> float:
        return self._done

    @property
    def finished(self) -> bool:
        return self._done >= self.total_cost - 1e-12

    def estimated_remaining_cost(self) -> float:
        return max(self.total_cost - self._done, 0.0)

    def true_remaining_cost(self) -> float:
        """Exact remaining work (same as the estimate for synthetic jobs)."""
        return self.estimated_remaining_cost()

    def advance(self, work: float) -> float:
        if work < 0:
            raise ValueError("work must be >= 0")
        consumed = min(work, self.total_cost - self._done)
        self._done += consumed
        return consumed

    def retry_copy(self) -> "SyntheticJob":
        """A retry copy: zero progress, or the last checkpoint mark.

        Without a checkpoint interval all partial work is lost.  With one,
        the copy starts from ``floor(done / interval) * interval`` -- the
        most recent checkpoint the crashed attempt had completed.
        """
        preserved = 0.0
        if self.checkpoint_interval is not None:
            marks = int(self._done / self.checkpoint_interval)
            preserved = min(marks * self.checkpoint_interval, self.total_cost)
        return SyntheticJob(
            self.query_id, self.total_cost, priority=self.priority,
            weight=self.weight, initial_done=preserved,
            deadline=self.deadline,
            checkpoint_interval=self.checkpoint_interval,
        )


class EngineJob(Job):
    """A job backed by a steppable SQL-engine execution.

    The engine's :class:`~repro.engine.executor.QueryExecution` exposes
    ``step(units)`` (run up to that much work) and a progress tracker with a
    refined remaining-cost estimate.  The simulator neither knows nor needs
    the true total cost -- the job is done when the executor says so.

    With a ``prepare`` factory (a zero-argument callable returning a fresh
    execution of the same SQL) the job becomes retryable: a retry copy
    plans the query anew and, when the failed execution took a
    work-preserving checkpoint, resumes from it instead of starting over.
    """

    def __init__(
        self,
        query_id: str,
        execution: "QueryExecution",
        priority: int = 0,
        weight: float | None = None,
        deadline: float | None = None,
        prepare: Callable[[], "QueryExecution"] | None = None,
    ) -> None:
        super().__init__(query_id, priority, weight, deadline=deadline)
        self._execution = execution
        self._prepare = prepare

    @property
    def execution(self) -> "QueryExecution":
        """The underlying engine execution (for result retrieval)."""
        return self._execution

    @property
    def completed_work(self) -> float:
        # Paid (budget-conserving) work, not charged work: batch-mode
        # executions charge in spikes and repay from later budgets, and
        # the simulator's accounting must move with the budgets it grants.
        return self._execution.paid_work

    @property
    def finished(self) -> bool:
        return self._execution.finished

    def estimated_remaining_cost(self) -> float:
        return self._execution.progress.estimated_remaining_cost()

    def memory_pressure_events(self) -> int:
        return self._execution.progress.memory_pressure_events()

    def advance(self, work: float) -> float:
        if work < 0:
            raise ValueError("work must be >= 0")
        if self.finished:
            return 0.0
        return self._execution.step(work)

    def retry_copy(self) -> "EngineJob":
        """A fresh execution, resumed from the last checkpoint if one exists."""
        if self._prepare is None:
            return super().retry_copy()  # raises NotImplementedError
        execution = self._prepare()
        ckpt = self._execution.last_checkpoint
        if ckpt is not None:
            execution.restore(ckpt)
        return EngineJob(
            self.query_id, execution, priority=self.priority,
            weight=self.weight, deadline=self.deadline,
            prepare=self._prepare,
        )


class CostNoiseJob(Job):
    """Decorator that corrupts a job's remaining-cost *estimates*.

    The underlying job executes normally, but
    :meth:`estimated_remaining_cost` is scaled by ``error_factor``.  This
    violates Assumption 2 in a controlled way, for the Section 4 ablations.
    """

    def __init__(self, inner: Job, error_factor: float) -> None:
        super().__init__(
            inner.query_id, inner.priority, inner.weight, deadline=inner.deadline
        )
        if error_factor <= 0:
            raise ValueError("error_factor must be > 0")
        self._inner = inner
        self._factor = float(error_factor)

    @property
    def inner(self) -> Job:
        """The wrapped job."""
        return self._inner

    @property
    def completed_work(self) -> float:
        return self._inner.completed_work

    @property
    def finished(self) -> bool:
        return self._inner.finished

    def estimated_remaining_cost(self) -> float:
        return self._inner.estimated_remaining_cost() * self._factor

    def memory_pressure_events(self) -> int:
        return self._inner.memory_pressure_events()

    def advance(self, work: float) -> float:
        return self._inner.advance(work)

    def retry_copy(self) -> "CostNoiseJob":
        """A fresh copy wrapping a retry copy of the inner job."""
        return CostNoiseJob(self._inner.retry_copy(), self._factor)
