"""Speed models: how the simulated RDBMS divides capacity among queries.

The default :class:`WeightedFairSharing` realises the paper's Assumptions
1 and 3 exactly: a constant total rate ``C`` (U/s) split among running
queries proportionally to their priority weights.

The other models deliberately break the assumptions, for the Section 4
"relaxing the assumptions" experiments:

* :class:`NoisyFairSharing` gives each query a private efficiency factor
  (some queries turn granted capacity into useful work less effectively --
  think CPU-bound vs. I/O-bound mixes), optionally without renormalising, so
  the total useful rate is no longer constant (violates Assumption 1) and
  speeds are no longer exactly weight-proportional (violates Assumption 3).
* :class:`ThrashingModel` reduces total throughput as concurrency grows
  (buffer-pool contention), another Assumption 1 violation.

:class:`ScaledSpeedModel` is the resilience hook: a mutable overlay over any
base model that the fault-injection layer uses to realise system-wide
brownouts (total-capacity factor) and per-query stalls (per-query factor),
both scripted in virtual time.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Mapping, Sequence

from repro.sim.jobs import Job


class SpeedModel(abc.ABC):
    """Maps the set of running jobs to per-job execution speeds."""

    @abc.abstractmethod
    def speeds(self, jobs: Sequence[Job], rate: float) -> dict[str, float]:
        """Per-job speed in U/s given total nominal *rate* ``C``."""


class WeightedFairSharing(SpeedModel):
    """Assumptions 1+3: ``s_i = C * w_i / W`` with ``W`` the weight sum."""

    def speeds(self, jobs: Sequence[Job], rate: float) -> dict[str, float]:
        if not jobs:
            return {}
        total = sum(j.weight for j in jobs)
        return {j.query_id: rate * j.weight / total for j in jobs}


class NoisyFairSharing(SpeedModel):
    """Fair sharing with per-query efficiency noise.

    Parameters
    ----------
    noise:
        Half-width of the uniform efficiency distribution: each query draws
        a factor in ``[1 - noise, 1 + noise]`` the first time it is seen.
    renormalize:
        If ``True``, speeds are rescaled so the total useful rate is still
        ``C`` (only Assumption 3 is violated).  If ``False``, the total rate
        itself fluctuates (Assumption 1 is violated too).
    seed:
        RNG seed; per-query factors are stable across calls.
    """

    def __init__(self, noise: float = 0.2, renormalize: bool = False, seed: int = 0):
        if not 0.0 <= noise < 1.0:
            raise ValueError("noise must be in [0, 1)")
        self._noise = noise
        self._renormalize = renormalize
        self._rng = random.Random(seed)
        self._factors: dict[str, float] = {}

    def _factor(self, query_id: str) -> float:
        if query_id not in self._factors:
            self._factors[query_id] = 1.0 + self._rng.uniform(-self._noise, self._noise)
        return self._factors[query_id]

    def factors(self) -> Mapping[str, float]:
        """The per-query efficiency factors drawn so far."""
        return dict(self._factors)

    def speeds(self, jobs: Sequence[Job], rate: float) -> dict[str, float]:
        if not jobs:
            return {}
        total = sum(j.weight for j in jobs)
        raw = {
            j.query_id: rate * j.weight / total * self._factor(j.query_id) for j in jobs
        }
        if self._renormalize:
            scale = rate / sum(raw.values())
            return {qid: s * scale for qid, s in raw.items()}
        return raw


class ScaledSpeedModel(SpeedModel):
    """Mutable capacity overlay over any base speed model.

    The fault-injection layer wraps the RDBMS's speed model in this once,
    then scripts two kinds of degradation against it:

    * ``rate_factor`` scales the total processing rate handed to the base
      model -- a *brownout* (``0.0`` is a full outage, ``1.0`` nominal);
    * per-query factors scale individual query speeds after the base model
      has divided capacity -- a factor of ``0.0`` is a *stall*.

    Factors must be finite and >= 0.  The base model still sees the scaled
    rate, so its own behaviour (fair sharing, thrashing, noise) composes
    with the injected degradation.
    """

    def __init__(self, base: SpeedModel, rate_factor: float = 1.0) -> None:
        self._base = base
        self._rate_factor = 1.0
        self._query_factors: dict[str, float] = {}
        self.set_rate_factor(rate_factor)

    @staticmethod
    def _check_factor(factor: float) -> float:
        if not math.isfinite(factor) or factor < 0:
            raise ValueError(f"factor must be finite and >= 0, got {factor}")
        return float(factor)

    @property
    def base(self) -> SpeedModel:
        """The wrapped speed model."""
        return self._base

    @property
    def rate_factor(self) -> float:
        """Current system-wide capacity factor (1.0 = nominal)."""
        return self._rate_factor

    def set_rate_factor(self, factor: float) -> None:
        """Scale the total processing rate by *factor* (brownout control)."""
        self._rate_factor = self._check_factor(factor)

    def set_query_factor(self, query_id: str, factor: float) -> None:
        """Scale one query's speed by *factor* (``0.0`` stalls it)."""
        self._query_factors[query_id] = self._check_factor(factor)

    def clear_query_factor(self, query_id: str) -> None:
        """Remove any per-query factor for *query_id* (back to nominal)."""
        self._query_factors.pop(query_id, None)

    def query_factor(self, query_id: str) -> float:
        """The per-query factor currently applied to *query_id*."""
        return self._query_factors.get(query_id, 1.0)

    def speeds(self, jobs: Sequence[Job], rate: float) -> dict[str, float]:
        """Base-model speeds under the scaled rate, per-query factors applied."""
        raw = self._base.speeds(jobs, rate * self._rate_factor)
        if not self._query_factors:
            return raw
        return {
            qid: s * self._query_factors.get(qid, 1.0) for qid, s in raw.items()
        }


class ThrashingModel(SpeedModel):
    """Total throughput degrades as concurrency exceeds a knee.

    Up to ``knee`` concurrent queries the system delivers the full rate
    ``C``; beyond that every extra query costs ``degradation`` of the total
    (floored at ``min_fraction * C``).  Speeds within the budget remain
    weight-proportional.
    """

    def __init__(
        self, knee: int = 4, degradation: float = 0.05, min_fraction: float = 0.25
    ) -> None:
        if knee < 1:
            raise ValueError("knee must be >= 1")
        if not 0.0 <= degradation < 1.0:
            raise ValueError("degradation must be in [0, 1)")
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError("min_fraction must be in (0, 1]")
        self._knee = knee
        self._degradation = degradation
        self._min_fraction = min_fraction

    def effective_rate(self, n_jobs: int, rate: float) -> float:
        """Total useful rate with *n_jobs* concurrent queries."""
        over = max(n_jobs - self._knee, 0)
        fraction = max(1.0 - self._degradation * over, self._min_fraction)
        return rate * fraction

    def speeds(self, jobs: Sequence[Job], rate: float) -> dict[str, float]:
        if not jobs:
            return {}
        effective = self.effective_rate(len(jobs), rate)
        total = sum(j.weight for j in jobs)
        return {j.query_id: effective * j.weight / total for j in jobs}
