"""Scalability harness: one shared schedule vs per-PI recomputation.

The paper argues (Section 4.3) that the standard-case algorithm is cheap
because "the effective n ... is likely to be small".  This harness probes
the opposite regime: hundreds to tens of thousands of *concurrent* queries,
each wanting a progress estimate on every refresh.

Two ways to refresh every PI in the system:

* **per-query recomputation** -- the naive deployment: each of the ``n``
  PIs independently re-runs :func:`~repro.core.standard_case.standard_case`
  over the whole mix, ``O(n^2 log n)`` per full-system refresh;
* **shared incremental schedule** -- all PIs are served from the
  simulator's single :class:`~repro.core.incremental.IncrementalSchedule`
  (maintained across steps in amortized ``O(log n)`` per structural
  change), so a full-system refresh is one ``O(n)`` sweep.

:func:`run_scale` drives a live :class:`~repro.sim.rdbms.SimulatedRDBMS`
(so schedule *maintenance* -- admissions, aborts, finishes -- is part of
what is exercised), times both refresh paths, verifies they agree to
floating-point tolerance and returns a :class:`ScaleReport`.
``benchmarks/test_bench_scale_concurrency.py`` persists the report to
``BENCH_scale.json``.

The per-query baseline is *sampled*: at large ``n``, timing all ``n``
independent recomputations would take minutes, so ``sample`` queries are
measured and the total is extrapolated linearly (each recomputation does
identical work, so the extrapolation is exact up to timer noise).  Reports
flag this with ``extrapolated=True``.  The single full recomputation both
paths are verified against is also timed (``shared_recompute_seconds``) --
the honest middle ground of "recompute once, share the result", which the
incremental schedule still beats because it never re-sorts.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

from repro.core.standard_case import standard_case
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS

#: Default concurrency sweep.
DEFAULT_SIZES = (100, 500, 1000, 5000, 10000)


@dataclass(frozen=True)
class ScalePoint:
    """Measurements for one concurrency level ``n``.

    All ``*_seconds`` figures are totals over ``rounds`` full-system
    refreshes.
    """

    n: int
    rounds: int
    #: How many queries the per-query baseline actually timed.
    sampled_queries: int
    #: Whether ``per_query_seconds_estimated`` was extrapolated from a
    #: sample rather than measured over all ``n`` queries.
    extrapolated: bool
    #: Refreshing all ``n`` PIs from the shared incremental schedule.
    incremental_seconds: float
    #: Measured time for ``sampled_queries`` independent recomputations.
    per_query_seconds_measured: float
    #: ``per_query_seconds_measured`` scaled to all ``n`` queries.
    per_query_seconds_estimated: float
    #: One full standard-case solve per round, shared by every PI.
    shared_recompute_seconds: float
    #: Full-system refresh speed-up vs independent per-query recomputation.
    speedup_vs_per_query: float
    #: Speed-up vs a single shared recomputation per refresh.
    speedup_vs_shared_recompute: float
    #: Largest |incremental - reference| over every query and round.
    max_abs_diff: float
    #: Same, scaled by ``max(1, |reference|)``.
    max_rel_diff: float


@dataclass(frozen=True)
class ScaleReport:
    """Output of :func:`run_scale`."""

    sizes: tuple[int, ...]
    seed: int
    rounds: int
    sample: int
    points: tuple[ScalePoint, ...]

    @property
    def max_rel_diff(self) -> float:
        """Worst relative disagreement across the whole sweep."""
        return max((p.max_rel_diff for p in self.points), default=0.0)

    def point(self, n: int) -> ScalePoint:
        """The measurement for concurrency level *n*."""
        for p in self.points:
            if p.n == n:
                return p
        raise KeyError(f"no scale point for n={n}")

    def as_dict(self) -> dict:
        """JSON-serialisable form (the ``BENCH_scale.json`` schema)."""
        return {
            "sizes": list(self.sizes),
            "seed": self.seed,
            "rounds": self.rounds,
            "sample": self.sample,
            "points": [asdict(p) for p in self.points],
        }


def _build_rdbms(n: int, seed: int) -> SimulatedRDBMS:
    """``n`` concurrent synthetic queries under weighted fair sharing.

    ``processing_rate = n`` keeps remaining times O(cost) regardless of
    concurrency, so virtual-time magnitudes (and hence FP error scales)
    are comparable across the sweep.
    """
    rng = random.Random(seed)
    rdbms = SimulatedRDBMS(processing_rate=float(n))
    for i in range(n):
        rdbms.submit(
            SyntheticJob(
                f"q{i}",
                rng.uniform(50.0, 150.0),
                priority=rng.choice((0, 1, 2)),
            )
        )
    return rdbms


def _measure_point(n: int, seed: int, rounds: int, sample: int) -> ScalePoint:
    rdbms = _build_rdbms(n, seed)
    rng = random.Random(seed + 1)
    # Cold build of the shared schedule happens here, outside the timed
    # region: it is paid once per workload, not once per refresh.
    if rdbms.shared_schedule() is None:  # pragma: no cover - defensive
        raise RuntimeError("shared schedule unsupported in scale harness")

    churn = max(1, n // 200)
    fresh = 0
    inc_total = 0.0
    per_q_total = 0.0
    shared_total = 0.0
    max_abs = 0.0
    max_rel = 0.0
    sampled = min(sample, n)

    for _ in range(rounds):
        # Structural churn: aborts and arrivals between refreshes, so the
        # timed refresh rides on an incrementally *maintained* schedule,
        # not a freshly built one.
        running = list(rdbms.running)
        for job in rng.sample(running, min(churn, len(running))):
            rdbms.abort(job.query_id)
        for _ in range(churn):
            rdbms.submit(
                SyntheticJob(
                    f"fresh{fresh}",
                    rng.uniform(50.0, 150.0),
                    priority=rng.choice((0, 1, 2)),
                )
            )
            fresh += 1
        rdbms.run_until(rdbms.clock + 0.5)

        # Refresh path 1: every PI served from the shared schedule.
        start = time.perf_counter()
        incremental = rdbms.remaining_times()
        inc_total += time.perf_counter() - start

        snaps = [j.snapshot() for j in rdbms.running]
        ids = [s.query_id for s in snaps]

        # Refresh path 2 (baseline): each PI independently re-solves the
        # whole system; measured on a sample, extrapolated linearly.
        chosen = rng.sample(ids, min(sampled, len(ids)))
        start = time.perf_counter()
        for qid in chosen:
            result = standard_case(
                snaps, rdbms.processing_rate, include_stages=False
            )
            result.remaining_times[qid]
        per_q_total += time.perf_counter() - start

        # Refresh path 3: recompute once, share the result.  Also the
        # reference the incremental answers are verified against.
        start = time.perf_counter()
        reference = standard_case(
            snaps, rdbms.processing_rate, include_stages=False
        ).remaining_times
        shared_total += time.perf_counter() - start

        for qid, expected in reference.items():
            diff = abs(incremental[qid] - expected)
            max_abs = max(max_abs, diff)
            max_rel = max(max_rel, diff / max(1.0, abs(expected)))

    per_q_estimated = per_q_total * (n / sampled)
    return ScalePoint(
        n=n,
        rounds=rounds,
        sampled_queries=sampled,
        extrapolated=sampled < n,
        incremental_seconds=inc_total,
        per_query_seconds_measured=per_q_total,
        per_query_seconds_estimated=per_q_estimated,
        shared_recompute_seconds=shared_total,
        speedup_vs_per_query=per_q_estimated / max(inc_total, 1e-12),
        speedup_vs_shared_recompute=shared_total / max(inc_total, 1e-12),
        max_abs_diff=max_abs,
        max_rel_diff=max_rel,
    )


def run_scale(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
    rounds: int = 3,
    sample: int = 32,
) -> ScaleReport:
    """Sweep the concurrency levels in *sizes* and measure both paths.

    Deterministic given (*sizes*, *seed*) up to wall-clock timing noise:
    the workloads, churn and verification values are seeded; only the
    ``*_seconds`` figures vary between runs.
    """
    if not sizes:
        raise ValueError("sizes must not be empty")
    if any(n < 1 for n in sizes):
        raise ValueError(f"sizes must all be >= 1, got {tuple(sizes)}")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if sample < 1:
        raise ValueError("sample must be >= 1")
    points = tuple(
        _measure_point(n, seed, rounds, sample) for n in sizes
    )
    return ScaleReport(
        sizes=tuple(sizes), seed=seed, rounds=rounds, sample=sample,
        points=points,
    )


def merge_bench_json(path: str | Path, section: str, payload: dict) -> dict:
    """Replace *section* of the JSON report at *path*, keeping the rest.

    Benches run in any order (or alone); each owns one top-level section
    of ``BENCH_scale.json`` and must not clobber the others.  Corrupt or
    non-object content is discarded rather than crashing a bench run.

    The write is atomic (temp file in the same directory + ``os.replace``)
    so concurrent CI jobs never leave a half-written report; the merge
    itself is still last-writer-wins per section.
    """
    path = Path(path)
    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except ValueError:
            loaded = None
        if isinstance(loaded, dict):
            data = loaded
    data[section] = payload
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as tmp:
            tmp.write(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return data
