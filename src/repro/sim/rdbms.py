"""The simulated multi-query RDBMS.

:class:`SimulatedRDBMS` advances a virtual clock over a population of jobs:

* running jobs progress simultaneously at the speeds dictated by the
  :class:`~repro.sim.scheduler.SpeedModel` (weighted fair sharing by
  default -- the paper's Assumptions 1+3),
* an admission queue with a multiprogramming limit holds the overflow
  (Section 2.3),
* scripted arrival schedules submit new queries over time (Section 2.4),
* periodic samplers fire so progress indicators can observe the system,
* the workload-management actions of Section 3 (abort / block / unblock /
  priority change / drain) can be applied at any virtual time, and
* resilience hooks let the fault-injection layer (:mod:`repro.faults`)
  script failures against the system: one-shot virtual-time events
  (:meth:`SimulatedRDBMS.add_event`), forced runtime failures
  (:meth:`SimulatedRDBMS.fail`), retry resubmission
  (:meth:`SimulatedRDBMS.resubmit`) and estimate corruption
  (:meth:`SimulatedRDBMS.corrupt_estimates`), with ``on_failure`` /
  ``on_resubmit`` observer hooks.

Synthetic jobs finish at analytically exact instants.  Engine-backed jobs
(whose completion cannot be predicted) advance in small work quanta; their
recorded finish time is accurate to one quantum.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Literal, Sequence

from repro.core.incremental import IncrementalSchedule
from repro.core.model import SystemSnapshot
from repro.core.standard_case import standard_case
from repro.engine.errors import EngineError
from repro.obs.runtime import Observability, resolve
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import Job, SyntheticJob
from repro.sim.scheduler import SpeedModel, WeightedFairSharing
from repro.sim.trace import QueryTrace, TraceSet

Status = Literal["queued", "running", "blocked", "finished", "aborted", "failed"]

#: Numerical slack for event-time comparisons.
_EPS = 1e-9


@dataclass
class QueryRecord:
    """Lifecycle record of one submitted query."""

    job: Job
    status: Status
    trace: QueryTrace
    #: The runtime error message, for queries that fail mid-execution.
    error: str | None = None
    #: Number of execution attempts so far (1 = never resubmitted).
    attempts: int = 1
    #: Absolute virtual time at which the query's deadline expires, or
    #: None.  Set at submit time from the job's relative ``deadline`` and
    #: *not* reset by resubmission: the deadline belongs to the query,
    #: not to any one attempt.
    deadline_at: float | None = None

    @property
    def query_id(self) -> str:
        """Identifier of the underlying job."""
        return self.job.query_id

    @property
    def terminal(self) -> bool:
        """Whether the query has reached a terminal status."""
        return self.status in ("finished", "aborted", "failed")


class SamplerHandle:
    """Handle to one periodic sampler registered with the simulator.

    Lets QoS layers retune a sampler's cadence after registration: the
    degradation ladder multiplies PI-refresh intervals under overload and
    restores them when pressure clears.  ``base_interval`` remembers the
    cadence the sampler was registered with.
    """

    __slots__ = ("_rdbms", "_cell", "base_interval")

    def __init__(self, rdbms: "SimulatedRDBMS", cell: list) -> None:
        self._rdbms = rdbms
        self._cell = cell
        self.base_interval = cell[0]

    @property
    def interval(self) -> float:
        """The sampler's current firing interval, virtual seconds."""
        return self._cell[0]

    def set_interval(self, interval: float) -> None:
        """Change the cadence; the next fire is re-anchored to now+interval."""
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self._cell[0] = interval
        self._cell[1] = self._rdbms.clock + interval


class SimulatedRDBMS:
    """A virtual-time RDBMS processing concurrent queries.

    Parameters
    ----------
    processing_rate:
        Total work rate ``C`` in U/s (Assumption 1).
    multiprogramming_limit:
        Maximum concurrent queries; ``None`` for unlimited.
    speed_model:
        How capacity is divided; defaults to weighted fair sharing.
    quantum:
        Time-slice upper bound (seconds) used when jobs with unpredictable
        completion (engine jobs) are running.
    obs:
        Optional :class:`~repro.obs.runtime.Observability` bundle; defaults
        to the process-global one (usually ``None`` = disabled).  Resolved
        once here so the hot paths only pay an identity check.
    """

    def __init__(
        self,
        processing_rate: float = 1.0,
        multiprogramming_limit: int | None = None,
        speed_model: SpeedModel | None = None,
        quantum: float = 0.25,
        obs: Observability | None = None,
    ) -> None:
        if processing_rate <= 0:
            raise ValueError("processing_rate must be > 0")
        if multiprogramming_limit is not None and multiprogramming_limit < 1:
            raise ValueError("multiprogramming_limit must be >= 1 or None")
        if quantum <= 0:
            raise ValueError("quantum must be > 0")
        self.processing_rate = processing_rate
        self.multiprogramming_limit = multiprogramming_limit
        self.speed_model = speed_model or WeightedFairSharing()
        self.quantum = quantum
        self._obs = resolve(obs)

        self._clock = 0.0
        self._running: list[Job] = []
        self._queue: list[Job] = []
        self._blocked: dict[str, Job] = {}
        self._records: dict[str, QueryRecord] = {}
        self._pending: list[tuple[float, Callable[[], Job]]] = []
        self._pending_idx = 0
        self._samplers: list[list] = []  # [interval, next_time, callback]
        self._events: list[tuple[float, int, Callable[["SimulatedRDBMS"], None]]] = []
        self._event_seq = 0
        self._estimate_corruption: dict[str | None, float] = {}
        self._rejecting_arrivals = False
        #: When set (see :meth:`repro.qos.AdmissionController.attach`),
        #: scripted arrivals are routed through its ``submit`` gate
        #: instead of being admitted unconditionally.
        self.admission_controller = None
        #: Memoized earliest live deadline (None = dirty).  ``_step``
        #: consults it up to three times per slice; recomputing the O(n)
        #: record scan each time dominated large-population runs.
        self._deadline_cache: float | None = None
        #: The shared incremental schedule serving all PIs, built lazily
        #: and maintained across steps; None when invalidated.
        self._shared_schedule: IncrementalSchedule | None = None
        self.traces = TraceSet()
        #: Called with (time, query_id) when a query finishes.
        self.on_finish: list[Callable[[float, str], None]] = []
        #: Called with (time, query_id) when a query is submitted.
        self.on_arrival: list[Callable[[float, str], None]] = []
        #: Called with (time, query_id, reason) when a query fails at
        #: runtime -- whether from an engine error or an injected crash.
        self.on_failure: list[Callable[[float, str, str], None]] = []
        #: Called with (time, query_id, attempt) when a failed or aborted
        #: query is resubmitted for another attempt.
        self.on_resubmit: list[Callable[[float, str, int], None]] = []

    # ------------------------------------------------------------------
    # Observability (no-ops unless a bundle was resolved at construction)
    # ------------------------------------------------------------------

    @property
    def obs(self) -> Observability | None:
        """The observability bundle this instance reports to (or ``None``)."""
        return self._obs

    def _emit(self, event: str, query_id: str | None = None, **fields) -> None:
        """Emit a trace event stamped with the current virtual time.

        Callers on hot paths must guard with ``if self._obs is not None``
        *before* building keyword arguments, so the disabled path never
        allocates.
        """
        self._obs.tracer.emit(event, self._clock, query_id, **fields)

    def _count(self, name: str) -> None:
        self._obs.metrics.counter(name).inc()

    def _observe_population(self) -> None:
        """Refresh the population gauges after a membership change."""
        m = self._obs.metrics
        m.gauge("rdbms.running").set(len(self._running))
        m.gauge("rdbms.queued").set(len(self._queue))
        m.gauge("rdbms.blocked").set(len(self._blocked))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Current virtual time, in seconds."""
        return self._clock

    @property
    def running(self) -> tuple[Job, ...]:
        """Jobs currently executing."""
        return tuple(self._running)

    @property
    def queued(self) -> tuple[Job, ...]:
        """Jobs in the admission queue, FIFO order."""
        return tuple(self._queue)

    @property
    def blocked(self) -> tuple[Job, ...]:
        """Jobs currently blocked by workload-management actions."""
        return tuple(self._blocked.values())

    def record(self, query_id: str) -> QueryRecord:
        """Lifecycle record of *query_id*."""
        try:
            return self._records[query_id]
        except KeyError:
            raise KeyError(f"unknown query {query_id!r}") from None

    def records(self) -> dict[str, QueryRecord]:
        """All lifecycle records, keyed by query id."""
        return dict(self._records)

    def snapshot(self) -> SystemSnapshot:
        """The system as a :class:`SystemSnapshot` for the PI algorithms.

        Remaining costs are the jobs' own (possibly imprecise) estimates,
        exactly what a real PI would read from executor counters.  Any
        active estimate corruption (see :meth:`corrupt_estimates`) is
        applied here: the PIs see the corrupted numbers, the execution
        itself is unaffected.
        """
        return SystemSnapshot(
            running=tuple(self._corrupted(j.snapshot()) for j in self._running),
            queued=tuple(self._corrupted(j.snapshot()) for j in self._queue),
            processing_rate=self.processing_rate,
            multiprogramming_limit=self.multiprogramming_limit,
            time=self._clock,
        )

    def _corrupted(self, snap):
        factor = self._estimate_corruption.get(
            snap.query_id, self._estimate_corruption.get(None)
        )
        if factor is None:
            return snap
        return replace(snap, remaining_cost=snap.remaining_cost * factor)

    def current_speeds(self) -> dict[str, float]:
        """Instantaneous per-query speeds, U/s."""
        return self.speed_model.speeds(self._running, self.processing_rate)

    # ------------------------------------------------------------------
    # Shared incremental schedule (one structure serves all PIs)
    # ------------------------------------------------------------------

    @property
    def shared_schedule_supported(self) -> bool:
        """Whether the running mix can be served by the shared schedule.

        True only under pure weighted fair sharing (the paper's
        Assumptions 1+3) with analytically-predictable synthetic jobs.
        Engine jobs, degraded speed models and fault-injection overlays
        (which replace ``speed_model`` with a
        :class:`~repro.sim.scheduler.ScaledSpeedModel`) make the shared
        schedule's predictions diverge from execution, so those
        configurations fall back to full recomputation.
        """
        return type(self.speed_model) is WeightedFairSharing and all(
            isinstance(j, SyntheticJob) for j in self._running
        )

    def shared_schedule(self) -> IncrementalSchedule | None:
        """The shared :class:`IncrementalSchedule` over the running set.

        Built lazily the first time a reader needs it, then maintained
        incrementally across admissions, completions, blocks and
        priority changes -- amortized ``O(log n)`` per change instead of
        an ``O(n log n)`` rebuild per PI refresh.  Every concurrent PI
        is served from this one structure.

        Returns ``None`` when the current configuration is unsupported
        (see :attr:`shared_schedule_supported`) or a running job carries
        a non-finite estimate; callers fall back to
        :func:`~repro.core.standard_case.standard_case`.

        The schedule reads the jobs' own uncorrupted estimates (the
        engine-internal view); :meth:`corrupt_estimates` only affects
        :meth:`snapshot`, i.e. what external PIs observe.
        """
        if not self.shared_schedule_supported:
            self._invalidate_schedule()
            return None
        if self._shared_schedule is None:
            sched = IncrementalSchedule(self.processing_rate)
            try:
                for job in self._running:
                    sched.add(job.snapshot())
            except ValueError:
                return None
            self._shared_schedule = sched
            if self._obs is not None:
                self._count("rdbms.schedule.builds")
                self._emit("schedule.build", size=len(self._running))
        return self._shared_schedule

    def remaining_time_of(self, query_id: str) -> float:
        """Remaining time of one *running* query under the current mix.

        Served from the shared schedule in ``O(log n)`` when available,
        falling back to a fresh standard-case solve.  Raises
        :class:`KeyError` for unknown queries and :class:`ValueError`
        when the query is not currently running.
        """
        record = self.record(query_id)
        if record.status != "running":
            raise ValueError(f"query {query_id!r} is {record.status}, not running")
        sched = self.shared_schedule()
        if sched is not None:
            return sched.remaining_time_of(query_id)
        snaps = [j.snapshot() for j in self._running]
        result = standard_case(snaps, self.processing_rate, include_stages=False)
        return result.remaining_times[query_id]

    def remaining_times(self) -> dict[str, float]:
        """Remaining times of every running query, in one ``O(n)`` sweep."""
        sched = self.shared_schedule()
        if sched is not None:
            if self._obs is not None:
                self._count("rdbms.refresh.shared")
            return sched.remaining_times()
        if self._obs is not None:
            self._count("rdbms.refresh.recompute")
        if not self._running:
            return {}
        snaps = [j.snapshot() for j in self._running]
        result = standard_case(snaps, self.processing_rate, include_stages=False)
        return dict(result.remaining_times)

    def _invalidate_schedule(self) -> None:
        if self._shared_schedule is not None and self._obs is not None:
            self._count("rdbms.schedule.invalidations")
            self._emit("schedule.invalidate")
        self._shared_schedule = None

    def _schedule_admit(self, job: Job) -> None:
        """Mirror an admission into the shared schedule, if one is live."""
        if self._shared_schedule is None:
            return
        if not isinstance(job, SyntheticJob):
            self._invalidate_schedule()
            return
        try:
            self._shared_schedule.add(job.snapshot())
        except ValueError:
            self._invalidate_schedule()

    def _sync_schedule(self, dt: float, finished: list[Job]) -> None:
        """Advance the shared schedule alongside one simulation step.

        The queries the schedule retires must exactly match the jobs the
        simulator just finished; any divergence (changed speed model,
        numerical disagreement) invalidates the schedule so the next
        reader rebuilds from ground truth.
        """
        if not self.shared_schedule_supported:
            self._invalidate_schedule()
            return
        schedule = self._shared_schedule
        assert schedule is not None
        finished_ids = {j.query_id for j in finished}
        if dt > 0:
            for _, qid in schedule.advance(dt):
                if qid not in finished_ids:
                    self._invalidate_schedule()
                    return
        for qid in finished_ids:
            schedule.discard(qid)

    # ------------------------------------------------------------------
    # Workload submission
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> QueryRecord:
        """Submit *job* now; it runs immediately or joins the queue."""
        if job.query_id in self._records:
            raise ValueError(f"duplicate query id {job.query_id!r}")
        if self._rejecting_arrivals:
            raise RuntimeError("RDBMS is draining: new queries are rejected")
        trace = self.traces.for_query(job.query_id)
        trace.submitted_at = self._clock
        record = QueryRecord(job=job, status="queued", trace=trace)
        if job.deadline is not None:
            record.deadline_at = self._clock + job.deadline
            self._invalidate_deadline_cache()
        self._records[job.query_id] = record
        self._queue.append(job)
        if self._obs is not None:
            self._count("rdbms.submitted")
            self._emit("query.submit", job.query_id,
                       cost=job.estimated_remaining_cost(), weight=job.weight)
        for cb in self.on_arrival:
            cb(self._clock, job.query_id)
        self._admit()
        return record

    def schedule(self, arrivals: ArrivalSchedule) -> None:
        """Register future submissions (processed as the clock reaches them)."""
        merged = self._pending[self._pending_idx :] + arrivals.sorted_entries()
        merged.sort(key=lambda e: e[0])
        self._pending = merged
        self._pending_idx = 0

    def add_sampler(
        self, interval: float, callback: Callable[["SimulatedRDBMS"], None],
        start: float | None = None,
    ) -> "SamplerHandle":
        """Invoke *callback(self)* every *interval* virtual seconds.

        Returns a :class:`SamplerHandle` so QoS layers can retune the
        cadence later (the degradation ladder coalesces PI refresh
        samplers under overload).
        """
        if interval <= 0:
            raise ValueError("interval must be > 0")
        first = self._clock + interval if start is None else start
        cell = [interval, first, callback]
        self._samplers.append(cell)
        return SamplerHandle(self, cell)

    def add_event(
        self, time: float, callback: Callable[["SimulatedRDBMS"], None]
    ) -> None:
        """Schedule *callback(self)* to fire once at virtual *time*.

        The one-shot counterpart of :meth:`add_sampler`, and the hook the
        fault-injection and retry layers script against: brownout windows,
        stall windows and backoff-delayed resubmissions are all timed
        events.  Events count as outstanding work for
        :meth:`run_to_completion`, so a scheduled retry is never silently
        skipped because the system looked idle.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        if time < self._clock - _EPS:
            raise ValueError(f"cannot schedule event at {time}, clock is {self._clock}")
        heapq.heappush(self._events, (time, self._event_seq, callback))
        self._event_seq += 1

    # ------------------------------------------------------------------
    # Workload-management actions (paper Section 3)
    # ------------------------------------------------------------------

    def abort(
        self,
        query_id: str,
        rollback_overhead: float = 0.0,
        reason: str = "workload-management abort",
    ) -> None:
        """Abort a query wherever it is (running, queued or blocked).

        ``rollback_overhead`` models the non-negligible cost of aborting
        (the paper's Section 3.3 future-work case): that much work is
        injected as an internal rollback job that must be processed --
        even while draining -- before the system is quiescent.
        ``reason`` is recorded in the trace's fault event.  An abort is
        an intentional decision: it does not fire ``on_failure`` and is
        therefore never retried by the retry layer.
        """
        if rollback_overhead < 0:
            raise ValueError("rollback_overhead must be >= 0")
        record = self.record(query_id)
        if record.status in ("finished", "aborted"):
            raise ValueError(f"query {query_id!r} already {record.status}")
        self._remove_everywhere(query_id)
        record.status = "aborted"
        self._invalidate_deadline_cache()
        record.trace.aborted_at = self._clock
        record.trace.record_fault(self._clock, "abort", reason)
        if self._obs is not None:
            self._count("rdbms.aborted")
            self._emit("query.abort", query_id, reason=reason,
                       rollback_overhead=rollback_overhead)
            self._observe_population()
        if rollback_overhead > 0:
            rollback = SyntheticJob(
                f"__rollback_{query_id}",
                rollback_overhead,
                weight=record.job.weight,
            )
            self._submit_internal(rollback)
        self._admit()

    def fail(self, query_id: str, reason: str = "injected fault") -> None:
        """Fail a query with a runtime error at the current virtual time.

        The fault-injection analogue of an engine error: the query leaves
        the system wherever it is (running, queued or blocked), its record
        turns ``failed`` with ``reason`` as the error, the trace gets a
        ``failed_at`` timestamp and a fault event, and the ``on_failure``
        hooks fire (which is how the retry layer notices).
        """
        record = self.record(query_id)
        if record.terminal:
            raise ValueError(f"query {query_id!r} already {record.status}")
        self._remove_everywhere(query_id)
        record.status = "failed"
        self._invalidate_deadline_cache()
        record.error = reason
        record.trace.failed_at = self._clock
        record.trace.record_fault(self._clock, "crash", reason)
        if self._obs is not None:
            self._count("rdbms.failed")
            self._emit("query.fail", query_id, reason=reason)
            self._observe_population()
        for cb in self.on_failure:
            cb(self._clock, query_id, reason)
        self._admit()

    def fail_everything(self, reason: str = "node crash") -> tuple[str, ...]:
        """Fail every non-terminal query at once (the node-crash shape).

        Running, queued and blocked queries all fail with *reason*; the
        per-query ``on_failure`` hooks fire for each, in deterministic
        (sorted query-id) order.  Returns the failed ids.  Used by the
        sharded cluster when a whole node dies: the router observes the
        failures and fails the sub-queries over to replica nodes.
        """
        victims = sorted(
            qid for qid, r in self._records.items() if not r.terminal
        )
        for qid in victims:
            self.fail(qid, reason)
        return tuple(victims)

    def resubmit(self, job: Job) -> QueryRecord:
        """Resubmit a failed or aborted query for another attempt.

        ``job`` must carry the same ``query_id`` as an existing terminal
        (failed/aborted) record and should be a fresh, zero-progress
        execution (see :meth:`repro.sim.jobs.Job.retry_copy`).  The record
        is reused: its attempt count increments, the trace keeps the full
        fault/attempt history, and the query re-enters the admission queue
        at the back like any other arrival.  The previous attempt's terminal
        timestamp (``failed_at`` / ``aborted_at``) is cleared -- terminal
        stamps describe the *final* outcome; per-attempt history stays in
        ``fault_events`` and ``attempts``.
        """
        record = self.record(job.query_id)
        if record.status not in ("failed", "aborted"):
            raise ValueError(
                f"query {job.query_id!r} is {record.status}; "
                "only failed or aborted queries can be resubmitted"
            )
        if self._rejecting_arrivals:
            raise RuntimeError("RDBMS is draining: resubmissions are rejected")
        record.job = job
        record.status = "queued"
        self._invalidate_deadline_cache()
        record.error = None
        record.attempts += 1
        record.trace.attempts = record.attempts
        record.trace.failed_at = None
        record.trace.aborted_at = None
        record.trace.record_fault(
            self._clock, "retry", f"attempt {record.attempts} resubmitted"
        )
        self._queue.append(job)
        if self._obs is not None:
            self._count("rdbms.resubmitted")
            self._emit("query.resubmit", job.query_id, attempt=record.attempts)
        for cb in self.on_resubmit:
            cb(self._clock, job.query_id, record.attempts)
        self._admit()
        return record

    def set_deadline(self, query_id: str, deadline_at: float | None) -> None:
        """Set (or clear) a query's absolute deadline at virtual time.

        Overrides any deadline derived from the job at submit time.  When
        the clock passes ``deadline_at`` while the query is still alive
        (queued, running or blocked), the query is aborted with a
        ``"deadline"`` fault event.
        """
        record = self.record(query_id)
        if record.terminal:
            raise ValueError(f"query {query_id!r} already {record.status}")
        if deadline_at is not None and deadline_at < self._clock - _EPS:
            raise ValueError(
                f"deadline_at {deadline_at} is in the past (clock {self._clock})"
            )
        record.deadline_at = deadline_at
        self._invalidate_deadline_cache()

    def corrupt_estimates(self, factor: float, query_id: str | None = None) -> None:
        """Corrupt the remaining-cost estimates PIs read from snapshots.

        Models corrupted optimizer statistics: every snapshot taken while
        the corruption is active reports ``remaining_cost * factor`` for
        the affected queries (``query_id=None`` affects all queries without
        a per-query override).  ``factor`` may be NaN or ``inf`` -- that is
        the point: downstream estimators must reject or survive such
        inputs.  Execution itself is unaffected.  Negative factors are
        rejected here because a negative cost is not expressible in a
        snapshot.
        """
        if factor < 0:
            raise ValueError(f"corruption factor must not be negative, got {factor}")
        self._estimate_corruption[query_id] = float(factor)

    def clear_estimate_corruption(self, query_id: str | None = None) -> None:
        """Remove the estimate corruption for *query_id* (or the global one)."""
        self._estimate_corruption.pop(query_id, None)

    @property
    def estimate_corruption(self) -> dict[str | None, float]:
        """Active corruption factors, keyed by query id (``None`` = global)."""
        return dict(self._estimate_corruption)

    def _submit_internal(self, job: Job) -> QueryRecord:
        """Submit system work (e.g. rollback) that bypasses drain rejection."""
        if job.query_id in self._records:
            raise ValueError(f"duplicate query id {job.query_id!r}")
        trace = self.traces.for_query(job.query_id)
        trace.submitted_at = self._clock
        record = QueryRecord(job=job, status="queued", trace=trace)
        self._records[job.query_id] = record
        self._queue.append(job)
        self._admit()
        return record

    def block(self, query_id: str, admit_replacement: bool = False) -> None:
        """Suspend a running query (Section 3.1's victim action).

        By default no queued query is admitted in its place -- the freed
        capacity goes to the surviving queries, which is the entire point of
        blocking a victim.  While :meth:`drain`-ing, ``admit_replacement``
        is ignored: a drain means "start nothing new", and promoting a
        queued query into the freed slot would start new work.
        """
        record = self.record(query_id)
        if record.status != "running":
            raise ValueError(f"query {query_id!r} is {record.status}, not running")
        self._running = [j for j in self._running if j.query_id != query_id]
        if self._shared_schedule is not None:
            self._shared_schedule.discard(query_id)
        self._blocked[query_id] = record.job
        record.status = "blocked"
        if self._obs is not None:
            self._count("rdbms.blocked_actions")
            self._emit("query.block", query_id,
                       admit_replacement=admit_replacement)
            self._observe_population()
        if admit_replacement and not self._rejecting_arrivals:
            self._admit()

    def unblock(self, query_id: str) -> None:
        """Resume a blocked query (front of the admission queue)."""
        record = self.record(query_id)
        if record.status != "blocked":
            raise ValueError(f"query {query_id!r} is {record.status}, not blocked")
        job = self._blocked.pop(query_id)
        self._queue.insert(0, job)
        record.status = "queued"
        if self._obs is not None:
            self._count("rdbms.unblocked_actions")
            self._emit("query.unblock", query_id)
        self._admit()

    def set_priority(self, query_id: str, priority: int, weight: float | None = None):
        """Change a query's priority (and hence its scheduling weight)."""
        record = self.record(query_id)
        job = record.job
        job.priority = priority
        from repro.core.model import weight_for_priority

        job.weight = weight_for_priority(priority) if weight is None else float(weight)
        if job.weight <= 0:
            raise ValueError("weight must be > 0")
        if self._shared_schedule is not None and record.status == "running":
            try:
                self._shared_schedule.reweight(query_id, job.weight)
            except (KeyError, ValueError):
                self._invalidate_schedule()

    def drain(self, rejecting: bool = True) -> None:
        """Operation O1 of the maintenance problem: reject new arrivals."""
        self._rejecting_arrivals = rejecting

    @property
    def draining(self) -> bool:
        """Whether new arrivals are currently rejected."""
        return self._rejecting_arrivals

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------

    def run_until(self, target: float) -> None:
        """Advance the virtual clock to *target* seconds."""
        if target < self._clock - _EPS:
            raise ValueError(f"cannot run backwards to {target} from {self._clock}")
        while self._clock < target - _EPS:
            self._step(target)

    def run_to_completion(self, max_time: float = 1e9) -> None:
        """Run until no runnable or pending work remains (blocked jobs stay).

        Raises :class:`RuntimeError` if *max_time* is reached first.
        """
        while self._has_outstanding_work():
            if self._clock >= max_time:
                raise RuntimeError(f"simulation exceeded max_time={max_time}")
            self._step(max_time)

    def quiescent(self) -> bool:
        """True when nothing is running, queued or pending."""
        return not self._has_outstanding_work()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _has_outstanding_work(self) -> bool:
        return bool(
            self._running
            or self._queue
            or self._pending_idx < len(self._pending)
            or self._events
        )

    def _admit(self) -> None:
        mpl = self.multiprogramming_limit
        admitted = False
        while self._queue and (mpl is None or len(self._running) < mpl):
            job = self._queue.pop(0)
            self._running.append(job)
            self._schedule_admit(job)
            record = self._records[job.query_id]
            record.status = "running"
            if record.trace.started_at is None:
                record.trace.started_at = self._clock
            admitted = True
            if self._obs is not None:
                self._count("rdbms.admitted")
                self._emit("query.admit", job.query_id,
                           queue_wait=self._clock - record.trace.submitted_at
                           if record.trace.submitted_at is not None else 0.0)
                self._obs.accuracy.mark_started(job.query_id, self._clock)
        if admitted and self._obs is not None:
            self._observe_population()

    def _next_pending_time(self) -> float:
        if self._pending_idx < len(self._pending):
            return self._pending[self._pending_idx][0]
        return math.inf

    def _next_sampler_time(self) -> float:
        return min((s[1] for s in self._samplers), default=math.inf)

    def _next_event_time(self) -> float:
        return self._events[0][0] if self._events else math.inf

    def _invalidate_deadline_cache(self) -> None:
        """Mark the memoized earliest-deadline value stale.

        Must be called whenever a record's ``deadline_at`` or terminal
        status changes -- a stale *low* value would pin ``dt`` at zero
        (the clock would never pass a dead deadline), a stale *high* one
        would let an analytic jump overshoot a live deadline.
        """
        self._deadline_cache = None

    def _next_deadline_time(self) -> float:
        """Earliest live deadline, so analytic jumps never overshoot one.

        Memoized: the O(records) scan runs only after a mutation
        (submit/resubmit/set_deadline/abort/fail/finish) dirtied the
        cache, not on every consult within a step.
        """
        if self._deadline_cache is None:
            self._deadline_cache = min(
                (
                    r.deadline_at
                    for r in self._records.values()
                    if r.deadline_at is not None and not r.terminal
                ),
                default=math.inf,
            )
        return self._deadline_cache

    def _enforce_deadlines(self) -> None:
        """Abort every live query whose deadline has passed."""
        for record in list(self._records.values()):
            if record.terminal or record.deadline_at is None:
                continue
            if record.deadline_at <= self._clock + _EPS:
                record.trace.record_fault(
                    self._clock, "deadline",
                    f"deadline {record.deadline_at:g}s expired",
                )
                self.abort(
                    record.query_id,
                    reason=f"deadline {record.deadline_at:g}s expired",
                )

    def _predictable_finish_dt(self, speeds: dict[str, float]) -> float:
        """Exact time to the next synthetic-job completion, or inf."""
        best = math.inf
        for job in self._running:
            if isinstance(job, SyntheticJob):
                s = speeds.get(job.query_id, 0.0)
                if s > 0:
                    best = min(best, job.true_remaining_cost() / s)
        return best

    def _step(self, target: float) -> None:
        """Advance by one event slice, not beyond *target*."""
        speeds = self.speed_model.speeds(self._running, self.processing_rate)

        dt = target - self._clock
        dt = min(dt, self._next_pending_time() - self._clock)
        dt = min(dt, self._next_sampler_time() - self._clock)
        dt = min(dt, self._next_event_time() - self._clock)
        dt = min(dt, self._next_deadline_time() - self._clock)
        dt = min(dt, self._predictable_finish_dt(speeds))
        has_unpredictable = any(
            not isinstance(j, SyntheticJob) for j in self._running
        )
        if has_unpredictable:
            dt = min(dt, self.quantum)
        if dt is math.inf or dt > target - self._clock:
            dt = target - self._clock
        dt = max(dt, 0.0)

        if not self._running and dt == 0.0 and self._next_pending_time() > self._clock:
            # Idle with nothing due now: jump straight to the next event.
            nxt = min(
                self._next_pending_time(),
                self._next_sampler_time(),
                self._next_event_time(),
                self._next_deadline_time(),
                target,
            )
            if nxt is math.inf:
                self._clock = target
                return
            dt = nxt - self._clock

        # Advance running jobs.  A job whose execution raises an engine
        # error (e.g. a runtime division by zero in real SQL) fails in
        # isolation: it leaves the system, everyone else keeps running.
        finished: list[Job] = []
        failed: list[tuple[Job, Exception]] = []
        if dt > 0:
            for job in list(self._running):
                work = speeds.get(job.query_id, 0.0) * dt
                try:
                    if work > 0:
                        job.advance(work)
                    if job.finished:
                        finished.append(job)
                except EngineError as exc:
                    failed.append((job, exc))
        else:
            finished = [j for j in self._running if j.finished]
        self._clock += dt
        if self._shared_schedule is not None:
            self._sync_schedule(dt, finished)

        for job, exc in failed:
            self._running = [j for j in self._running if j.query_id != job.query_id]
            record = self._records[job.query_id]
            record.status = "failed"
            self._invalidate_deadline_cache()
            record.error = str(exc)
            record.trace.failed_at = self._clock
            record.trace.record_fault(self._clock, "runtime-error", str(exc))
            if self._obs is not None:
                self._count("rdbms.failed")
                self._emit("query.fail", job.query_id, reason=str(exc))
            for cb in self.on_failure:
                cb(self._clock, job.query_id, str(exc))
        if failed:
            self._admit()

        # Retire completions (deterministic order).
        for job in sorted(finished, key=lambda j: j.query_id):
            self._running = [j for j in self._running if j.query_id != job.query_id]
            record = self._records[job.query_id]
            record.status = "finished"
            self._invalidate_deadline_cache()
            record.trace.finished_at = self._clock
            record.trace.work.append(self._clock, job.completed_work)
            if self._obs is not None:
                self._count("rdbms.finished")
                started = record.trace.started_at
                if started is not None:
                    self._obs.metrics.histogram("rdbms.query_lifetime").observe(
                        self._clock - started
                    )
                self._emit("query.finish", job.query_id, attempts=record.attempts)
                self._obs.accuracy.mark_finished(job.query_id, self._clock)
            for cb in self.on_finish:
                cb(self._clock, job.query_id)
        if finished:
            self._admit()
        if (failed or finished) and self._obs is not None:
            self._observe_population()

        # Expire deadlines after retiring completions, so a query that
        # finishes exactly at its deadline counts as finished.
        self._enforce_deadlines()

        # Process due arrivals.
        while (
            self._pending_idx < len(self._pending)
            and self._pending[self._pending_idx][0] <= self._clock + _EPS
        ):
            _, factory = self._pending[self._pending_idx]
            self._pending_idx += 1
            if self._rejecting_arrivals:
                continue
            if self.admission_controller is not None:
                self.admission_controller.submit(factory())
            else:
                self.submit(factory())

        # Fire due one-shot events (fault windows, retries) before samplers,
        # so observers sample the post-event state.
        while self._events and self._events[0][0] <= self._clock + _EPS:
            _, _, callback = heapq.heappop(self._events)
            callback(self)

        # Fire due samplers (record traces first so callbacks see them).
        due = [s for s in self._samplers if s[1] <= self._clock + _EPS]
        if due:
            self._record_trace_point()
        for s in due:
            while s[1] <= self._clock + _EPS:
                s[1] += s[0]
        for s in due:
            s[2](self)

    def _remove_everywhere(self, query_id: str) -> None:
        self._running = [j for j in self._running if j.query_id != query_id]
        self._queue = [j for j in self._queue if j.query_id != query_id]
        self._blocked.pop(query_id, None)
        if self._shared_schedule is not None:
            self._shared_schedule.discard(query_id)

    def _record_trace_point(self) -> None:
        speeds = self.current_speeds()
        for job in self._running:
            trace = self.traces.for_query(job.query_id)
            trace.work.append(self._clock, job.completed_work)
            trace.speed.append(self._clock, speeds.get(job.query_id, 0.0))


def make_synthetic_workload(
    costs: Sequence[float],
    priorities: Iterable[int] | None = None,
    prefix: str = "Q",
    initial_done: Sequence[float] | None = None,
) -> list[SyntheticJob]:
    """Build synthetic jobs ``Q1..Qn`` from cost (and optional priority) lists."""
    prios = list(priorities) if priorities is not None else [0] * len(costs)
    if len(prios) != len(costs):
        raise ValueError("priorities must match costs in length")
    done = list(initial_done) if initial_done is not None else [0.0] * len(costs)
    if len(done) != len(costs):
        raise ValueError("initial_done must match costs in length")
    return [
        SyntheticJob(f"{prefix}{i + 1}", cost, priority=prios[i], initial_done=done[i])
        for i, cost in enumerate(costs)
    ]
