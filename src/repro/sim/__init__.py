"""Discrete-event simulator of a multi-query RDBMS.

The paper's prototype ran inside PostgreSQL on one machine; this package is
the substrate substitution: a virtual-time RDBMS that

* processes work at a configurable total rate ``C`` in U/s and divides it
  among running queries proportionally to priority weights (the paper's
  Assumptions 1 and 3, realised by :class:`repro.sim.scheduler.WeightedFairSharing`),
* admits queries through a FIFO admission queue with a multiprogramming
  limit (Section 2.3),
* accepts Poisson or scripted arrival streams (Section 2.4 / the SCQ
  experiment), and
* exposes the workload-management actions of Section 3: abort, block,
  unblock, priority changes and draining.

Queries can be *synthetic* jobs (exact known costs -- Assumption 2 holds) or
*engine-backed* jobs wrapping :mod:`repro.engine` executors, whose remaining
cost is only an estimate that gets refined mid-flight.  Pluggable speed
models deliberately violate the assumptions for the Section 4 experiments.
"""

from repro.sim.arrivals import ArrivalSchedule, poisson_arrival_times
from repro.sim.jobs import EngineJob, Job, SyntheticJob
from repro.sim.rdbms import QueryRecord, SimulatedRDBMS
from repro.sim.scheduler import (
    NoisyFairSharing,
    ScaledSpeedModel,
    SpeedModel,
    ThrashingModel,
    WeightedFairSharing,
)
from repro.sim.trace import FaultEvent, QueryTrace, TraceSet

__all__ = [
    "ArrivalSchedule",
    "EngineJob",
    "FaultEvent",
    "Job",
    "NoisyFairSharing",
    "QueryRecord",
    "QueryTrace",
    "ScaledSpeedModel",
    "SimulatedRDBMS",
    "SpeedModel",
    "SyntheticJob",
    "ThrashingModel",
    "TraceSet",
    "WeightedFairSharing",
    "poisson_arrival_times",
]
