"""Graceful-degradation ladder: shed load in rungs, not off a cliff.

When offered load exceeds capacity, a system without a plan degrades
*everything at once*: every PI refresh competes with useful work, every
deadline slips together, and goodput falls off a cliff.  The ladder
climbs through progressively more invasive interventions, driven by an
**overload score** that combines the two signals the paper's machinery
already maintains:

* **queue depth** -- admission-queue length relative to the
  multiprogramming limit (how far demand outruns slots);
* **projected remaining-work horizon** -- seconds until the system
  would be quiescent, straight from the shared
  :class:`~repro.core.incremental.IncrementalSchedule` (how far demand
  outruns capacity).

Rungs, in escalation order (each emits obs events and is individually
exercisable through its public method):

1. **coalesce** -- multiply registered PI-refresh samplers' cadence by
   ``refresh_factor``: progress reporting gets staler but cheaper, no
   query is touched;
2. **demote** -- drop low-priority queries to ``demote_priority`` (the
   paper's Section 3 priority action); sustained pressure then *parks*
   them via :meth:`~repro.sim.rdbms.SimulatedRDBMS.block` with no
   replacement, freeing their capacity entirely;
3. **shed** -- abort low-priority queries using *inverted* Section 3.1
   victim selection: where speedup picks the victim whose blocking buys
   the target the most, shedding kills the cheapest-to-kill,
   least-progressed queries first (minimum sunk work wasted, maximum
   capacity freed).

De-escalation retraces the rungs one at a time with hysteresis
(``clear_fraction`` + ``clear_ticks``): parked queries resume, demotions
stay (re-promoting mid-flight would thrash the schedule), and PI cadence
is restored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.rdbms import SamplerHandle, SimulatedRDBMS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.qos.admission import AdmissionController

#: Rung indices to names, escalation order.
RUNGS = ("normal", "coalesce", "demote", "shed")


@dataclass(frozen=True)
class LadderConfig:
    """Thresholds and knobs for a :class:`DegradationLadder`.

    Attributes
    ----------
    coalesce_at, demote_at, shed_at:
        Overload-score thresholds for entering rungs 1..3; must be
        strictly increasing.
    clear_fraction:
        Hysteresis: a rung clears only when the score drops below
        ``threshold * clear_fraction``.
    clear_ticks:
        Consecutive below-threshold checks required before stepping down
        one rung (prevents oscillation on a noisy score).
    horizon_target:
        Seconds of projected remaining work considered "full capacity";
        the horizon term of the score is ``horizon / horizon_target``.
    refresh_factor:
        PI-refresh cadence multiplier applied at rung >= 1.
    demote_priority:
        Priority assigned to demoted queries at rung >= 2.
    low_priority_ceiling:
        Queries with priority <= this are eligible for demotion, parking
        and shedding; higher-priority queries are never touched.
    max_shed_per_step:
        Aborts per check at rung 3 (shed gradually, re-score, repeat).
    """

    coalesce_at: float = 1.5
    demote_at: float = 3.0
    shed_at: float = 6.0
    clear_fraction: float = 0.75
    clear_ticks: int = 2
    horizon_target: float = 30.0
    refresh_factor: float = 4.0
    demote_priority: int = -2
    low_priority_ceiling: int = 0
    max_shed_per_step: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.coalesce_at < self.demote_at < self.shed_at:
            raise ValueError(
                "thresholds must satisfy 0 < coalesce_at < demote_at < shed_at, "
                f"got {self.coalesce_at}, {self.demote_at}, {self.shed_at}"
            )
        if not 0.0 < self.clear_fraction <= 1.0:
            raise ValueError(
                f"clear_fraction must be in (0, 1], got {self.clear_fraction}"
            )
        if self.clear_ticks < 1:
            raise ValueError(f"clear_ticks must be >= 1, got {self.clear_ticks}")
        if not math.isfinite(self.horizon_target) or self.horizon_target <= 0:
            raise ValueError(
                f"horizon_target must be finite and > 0, got {self.horizon_target}"
            )
        if self.refresh_factor < 1.0:
            raise ValueError(
                f"refresh_factor must be >= 1, got {self.refresh_factor}"
            )
        if self.max_shed_per_step < 1:
            raise ValueError(
                f"max_shed_per_step must be >= 1, got {self.max_shed_per_step}"
            )

    def threshold(self, rung: int) -> float:
        """Entry threshold of *rung* (1..3)."""
        return (self.coalesce_at, self.demote_at, self.shed_at)[rung - 1]


@dataclass(frozen=True)
class LadderEvent:
    """One ladder action, for audit logs and tests."""

    time: float
    rung: int
    action: str
    detail: str


class DegradationLadder:
    """Climbs and descends the degradation rungs on a periodic check.

    Parameters
    ----------
    rdbms:
        The simulator to protect.
    config:
        Thresholds and knobs; see :class:`LadderConfig`.
    admission:
        Optional admission controller to inform of the current rung
        (its pressure floors tighten as the ladder climbs).
    check_interval:
        Seconds between overload checks once :meth:`attach` is called.
    """

    def __init__(
        self,
        rdbms: SimulatedRDBMS,
        config: LadderConfig | None = None,
        admission: "AdmissionController | None" = None,
        check_interval: float = 1.0,
    ) -> None:
        if check_interval <= 0:
            raise ValueError(f"check_interval must be > 0, got {check_interval}")
        self._rdbms = rdbms
        self.config = config if config is not None else LadderConfig()
        self._admission = admission
        self._check_interval = check_interval
        self._rung = 0
        self._calm_ticks = 0
        self._demote_ticks = 0
        self._attached = False
        self._pi_samplers: list[SamplerHandle] = []
        self._demoted: set[str] = set()
        self._parked: set[str] = set()
        #: Chronological log of every rung transition and action.
        self.events: list[LadderEvent] = []
        #: Query ids shed (aborted) by rung 3, in shed order.
        self.shed_ids: list[str] = []

    @property
    def rung(self) -> int:
        """Current rung index (0 = normal operation)."""
        return self._rung

    @property
    def rung_name(self) -> str:
        """Current rung name (``"normal"`` .. ``"shed"``)."""
        return RUNGS[self._rung]

    @property
    def parked(self) -> tuple[str, ...]:
        """Ids of queries currently parked (blocked) by the ladder."""
        return tuple(sorted(self._parked))

    def attach(self) -> "DegradationLadder":
        """Arm the periodic overload check."""
        if self._attached:
            raise RuntimeError("ladder already attached")
        self._attached = True
        self._rdbms.add_sampler(self._check_interval, self._on_tick)
        return self

    def register_pi_sampler(self, handle: SamplerHandle) -> None:
        """Declare *handle* a PI-refresh sampler rung 1 may coalesce."""
        self._pi_samplers.append(handle)
        if self._rung >= 1:
            handle.set_interval(
                handle.base_interval * self.config.refresh_factor
            )

    # ------------------------------------------------------------------
    # The overload score
    # ------------------------------------------------------------------

    def overload_score(self) -> float:
        """Queue-depth term plus projected remaining-work-horizon term.

        Score 1.0 roughly means "exactly at capacity": either the queue
        holds one full multiprogramming round, or the projected horizon
        equals ``horizon_target``.
        """
        rdbms = self._rdbms
        slots = rdbms.multiprogramming_limit
        if slots is None:
            slots = max(len(rdbms.running), 1)
        queue_term = len(rdbms.queued) / slots
        horizon = self._projected_horizon()
        return queue_term + horizon / self.config.horizon_target

    def _projected_horizon(self) -> float:
        """Seconds until quiescence: running (projected) plus queued work."""
        rdbms = self._rdbms
        rate = rdbms.processing_rate
        sched = rdbms.shared_schedule()
        if sched is not None:
            horizon = sched.quiescent_time()
        else:
            work = sum(
                c for j in rdbms.running
                if math.isfinite(c := j.estimated_remaining_cost())
            )
            horizon = work / rate
        queued_work = sum(
            c for j in rdbms.queued
            if math.isfinite(c := j.estimated_remaining_cost())
        )
        return horizon + queued_work / rate

    # ------------------------------------------------------------------
    # Escalation control
    # ------------------------------------------------------------------

    def _target_rung(self, score: float) -> int:
        target = 0
        for rung in (1, 2, 3):
            if score >= self.config.threshold(rung):
                target = rung
        return target

    def _on_tick(self, rdbms: SimulatedRDBMS) -> None:
        score = self.overload_score()
        target = self._target_rung(score)
        if target > self._rung:
            # Escalate one rung per check: gentler interventions get a
            # chance to work before harsher ones engage.
            self._escalate(score)
        elif self._clears_current(score):
            self._calm_ticks += 1
            if self._calm_ticks >= self.config.clear_ticks:
                self._descend(score)
        else:
            self._calm_ticks = 0
        # Rung maintenance: actions that repeat while a rung holds.
        if self._rung >= 2:
            self.demote_low_priority()
            self._demote_ticks += 1
            if self._demote_ticks >= 2:
                self.park_low_priority()
        else:
            self._demote_ticks = 0
        if self._rung >= 3:
            self.shed(self.config.max_shed_per_step)

    def _clears_current(self, score: float) -> bool:
        if self._rung == 0:
            return False
        limit = self.config.threshold(self._rung) * self.config.clear_fraction
        return score < limit

    def _escalate(self, score: float) -> None:
        self._rung += 1
        self._calm_ticks = 0
        self._note("enter", f"score {score:.2f}")
        if self._rung == 1:
            self.apply_coalesce()
        if self._admission is not None:
            self._admission.set_pressure(self._rung)

    def _descend(self, score: float) -> None:
        leaving = self._rung
        self._rung -= 1
        self._calm_ticks = 0
        self._note("exit", f"score {score:.2f}, leaving {RUNGS[leaving]}")
        if leaving == 2:
            self.release_parked()
        if leaving == 1:
            self.restore_cadence()
        if self._admission is not None:
            self._admission.set_pressure(self._rung)

    # ------------------------------------------------------------------
    # Rung actions (public: each is individually testable)
    # ------------------------------------------------------------------

    def apply_coalesce(self) -> None:
        """Rung 1: multiply registered PI-refresh cadences."""
        for handle in self._pi_samplers:
            handle.set_interval(
                handle.base_interval * self.config.refresh_factor
            )
        self._note(
            "coalesce",
            f"{len(self._pi_samplers)} PI samplers x{self.config.refresh_factor:g}",
        )

    def restore_cadence(self) -> None:
        """Undo rung 1: PI-refresh samplers back to their base cadence."""
        for handle in self._pi_samplers:
            handle.set_interval(handle.base_interval)
        self._note("restore-cadence", f"{len(self._pi_samplers)} PI samplers")

    def _low_priority_running(self) -> list:
        ceiling = self.config.low_priority_ceiling
        return [
            j for j in self._rdbms.running
            if j.priority <= ceiling
            and not j.query_id.startswith("__rollback_")
        ]

    def demote_low_priority(self) -> tuple[str, ...]:
        """Rung 2: drop low-priority running queries to demote_priority."""
        acted = []
        for job in self._low_priority_running():
            qid = job.query_id
            if qid in self._demoted or job.priority <= self.config.demote_priority:
                continue
            self._rdbms.set_priority(qid, self.config.demote_priority)
            self._demoted.add(qid)
            acted.append(qid)
            self._note("demote", qid)
        return tuple(acted)

    def park_low_priority(self) -> tuple[str, ...]:
        """Rung 2 sustained: block low-priority queries, freeing capacity."""
        acted = []
        for job in self._low_priority_running():
            qid = job.query_id
            self._rdbms.block(qid)
            self._parked.add(qid)
            acted.append(qid)
            self._note("park", qid)
        return tuple(acted)

    def release_parked(self) -> tuple[str, ...]:
        """Resume every query the ladder parked (on leaving rung 2)."""
        released = []
        for qid in sorted(self._parked):
            record = self._rdbms.record(qid)
            if record.status == "blocked":
                self._rdbms.unblock(qid)
                released.append(qid)
                self._note("release", qid)
        self._parked.clear()
        return tuple(released)

    def shed_candidates(self) -> list[str]:
        """Live low-priority queries, cheapest-to-kill first.

        Inverted Section 3.1: where speedup's victim selection blocks
        the query whose removal buys a target the most, shedding kills
        the queries with the least sunk work (cheapest to waste) and,
        among those, the most remaining work (frees the most capacity).
        """
        ceiling = self.config.low_priority_ceiling
        candidates = []
        for record in self._rdbms.records().values():
            job = record.job
            if (
                record.terminal
                or job.priority > ceiling
                or job.query_id.startswith("__rollback_")
                or job.query_id in self._parked
            ):
                continue
            remaining = job.estimated_remaining_cost()
            if not math.isfinite(remaining):
                remaining = math.inf
            candidates.append((job.completed_work, -remaining, job.query_id))
        candidates.sort()
        return [qid for _, _, qid in candidates]

    def shed(self, limit: int | None = None) -> tuple[str, ...]:
        """Rung 3: abort up to *limit* cheapest-to-kill queries."""
        limit = self.config.max_shed_per_step if limit is None else limit
        acted = []
        for qid in self.shed_candidates()[:limit]:
            self._rdbms.abort(qid, reason="load-shed (ladder rung 3)")
            self.shed_ids.append(qid)
            acted.append(qid)
            self._note("shed", qid)
        return tuple(acted)

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    def _note(self, action: str, detail: str) -> None:
        now = self._rdbms.clock
        self.events.append(LadderEvent(now, self._rung, action, detail))
        obs = self._rdbms.obs
        if obs is not None:
            obs.metrics.counter(f"qos.ladder.{action}").inc()
            obs.metrics.gauge("qos.ladder.rung").set(self._rung)
            obs.tracer.emit(
                f"qos.ladder.{action}", now, None,
                rung=self._rung, rung_name=RUNGS[self._rung], detail=detail,
            )
