"""PI-driven overload protection: admission, breakers and degradation.

The quality-of-service layer closes the loop the paper's Section 3
opens: progress estimates do not just *report* load, they *gate* it.

* :mod:`repro.qos.admission` -- typed admit/degrade/defer/reject
  decisions in front of the simulator, with the shared incremental
  schedule as the feasibility oracle;
* :mod:`repro.qos.breaker` -- per-node circuit breakers so the sharded
  router stops hammering dead or browned-out nodes;
* :mod:`repro.qos.ladder` -- a graceful-degradation ladder that
  coalesces PI refreshes, demotes/parks low-priority queries, and
  finally sheds load instead of letting goodput fall off a cliff.
"""

from repro.qos.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.qos.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.qos.ladder import (
    RUNGS,
    DegradationLadder,
    LadderConfig,
    LadderEvent,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "DegradationLadder",
    "LadderConfig",
    "LadderEvent",
    "RUNGS",
]
