"""Per-node circuit breaker: stop hammering a node that keeps failing.

The sharded router's failover loop (PR 6) retries a dead node's work on
its replicas -- but nothing stops it from *routing back* to a node that
is nominally serving yet failing every request, or from burning backoff
attempts against a target everyone already knows is down.  The classic
remedy is a circuit breaker per node:

* **closed** (normal): requests flow; consecutive failures are counted.
* **open** (tripped): after ``failure_threshold`` consecutive failures
  -- or a completion whose latency exceeds ``latency_factor`` times the
  expected latency, the brownout signature -- requests are refused for a
  virtual-time ``cooldown``.
* **half-open** (probing): once the cooldown elapses, exactly one probe
  request is let through.  Success closes the breaker; failure re-opens
  it for another full cooldown.

Everything is driven by an explicit virtual ``now`` argument -- the
breaker never reads a wall clock, so simulations stay deterministic and
the state machine is trivially property-testable with scripted
failure/success/clock sequences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for a :class:`CircuitBreaker`.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures (with no intervening success) that trip a
        closed breaker open.
    cooldown:
        Virtual seconds an open breaker refuses requests before allowing
        a half-open probe.
    latency_factor:
        Optional brownout detector: a *successful* completion whose
        observed latency exceeds ``latency_factor * expected`` counts as
        a failure (the node answered, but so slowly that routing more
        work at it makes things worse).  ``None`` disables the check.
    """

    failure_threshold: int = 3
    cooldown: float = 5.0
    latency_factor: float | None = None

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not math.isfinite(self.cooldown) or self.cooldown <= 0:
            raise ValueError(f"cooldown must be finite and > 0, got {self.cooldown}")
        if self.latency_factor is not None and (
            not math.isfinite(self.latency_factor) or self.latency_factor <= 1.0
        ):
            raise ValueError(
                f"latency_factor must be finite and > 1, got {self.latency_factor}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, for audit logs and tests."""

    time: float
    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """A closed / open / half-open breaker in virtual time.

    All methods take the current virtual time explicitly; the breaker
    holds no reference to a clock.  The contract the property tests pin:

    * :meth:`allow` never returns True while open before
      ``opened_at + cooldown`` (no early probes);
    * after the cooldown, :meth:`allow` grants exactly one probe; a
      success while half-open closes the breaker (a healthy node can
      always escape the open state -- no wedging);
    * a failure while half-open re-opens for a fresh cooldown.
    """

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        #: Chronological log of state changes.
        self.transitions: list[BreakerTransition] = []

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (meaningful while closed)."""
        return self._consecutive_failures

    def _transition(self, now: float, to_state: str, reason: str) -> None:
        self.transitions.append(
            BreakerTransition(now, self._state, to_state, reason)
        )
        self._state = to_state

    def _open(self, now: float, reason: str) -> None:
        self._transition(now, "open", reason)
        self._opened_at = now
        self._probe_outstanding = False

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """Whether a request may be sent at virtual time *now*.

        While open, returns False until the cooldown elapses, then moves
        to half-open and grants a single probe; further calls return
        False until the probe resolves via :meth:`record_success` or
        :meth:`record_failure`.
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            if now < self._opened_at + self.config.cooldown:
                return False
            self._transition(now, "half_open", "cooldown elapsed")
            self._probe_outstanding = True
            return True
        # half_open: one probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def retry_after(self, now: float) -> float:
        """Seconds until a request could next be allowed (0 when it can now).

        Pure -- never changes state.  While open this is the remaining
        cooldown; the breaker-aware
        :meth:`~repro.faults.retry.RetryPolicy.delay` uses it instead of
        burning exponential-backoff attempts against a tripped node.
        """
        if self._state != "open":
            return 0.0
        return max(self._opened_at + self.config.cooldown - now, 0.0)

    # ------------------------------------------------------------------
    # Outcome reporting
    # ------------------------------------------------------------------

    def record_success(self, now: float) -> None:
        """Report a successful request (resets the failure streak)."""
        self._consecutive_failures = 0
        if self._state == "half_open":
            self._probe_outstanding = False
            self._transition(now, "closed", "probe succeeded")
        # A late success while open (a straggler from before the trip)
        # does not close the breaker: the probe protocol decides.

    def record_failure(self, now: float, reason: str = "request failed") -> None:
        """Report a failed request; may trip or re-open the breaker."""
        if self._state == "half_open":
            self._probe_outstanding = False
            self._open(now, f"probe failed: {reason}")
            return
        if self._state == "open":
            return  # already tripped; stragglers don't extend the cooldown
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.failure_threshold:
            self._open(
                now,
                f"{self._consecutive_failures} consecutive failures: {reason}",
            )

    def record_latency(self, now: float, observed: float, expected: float) -> None:
        """Report a completion's latency; brownout-slow counts as failure.

        With :attr:`BreakerConfig.latency_factor` unset, any completion
        is a plain success.  Non-finite or non-positive expectations
        disable the check for that observation (nothing to compare to).
        """
        lf = self.config.latency_factor
        if (
            lf is not None
            and math.isfinite(observed)
            and math.isfinite(expected)
            and expected > 0
            and observed > lf * expected
        ):
            self.record_failure(
                now,
                f"latency {observed:g}s > {lf:g}x expected {expected:g}s",
            )
        else:
            self.record_success(now)


@dataclass
class BreakerBoard:
    """A breaker per node, lazily created with a shared config."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    def for_node(self, node_id: str) -> CircuitBreaker:
        """The node's breaker, created closed on first access."""
        breaker = self.breakers.get(node_id)
        if breaker is None:
            breaker = CircuitBreaker(self.config)
            self.breakers[node_id] = breaker
        return breaker

    def open_nodes(self) -> tuple[str, ...]:
        """Ids of nodes whose breakers are currently open, sorted."""
        return tuple(
            sorted(n for n, b in self.breakers.items() if b.state == "open")
        )
