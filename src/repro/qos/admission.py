"""PI-driven admission control in front of the simulated RDBMS.

``SimulatedRDBMS.submit`` admits unconditionally; under overload that
turns every deadline into a casualty at once.  The
:class:`AdmissionController` sits in front of it and makes the shared
:class:`~repro.core.incremental.IncrementalSchedule` projection the
gatekeeper, not just the reporter: before admitting a newcomer it asks
whether the newcomer *plus every deadline-bearing query already in the
system* would still finish on time under weighted fair sharing.  Each
submission gets a typed decision:

* **admit** -- budgets hold and the projection says every deadline
  (including the newcomer's) is still feasible;
* **degrade** -- the full-weight newcomer would break a deadline, but a
  demoted (tiny-weight) admission would not: the query runs best-effort;
* **defer** -- an in-flight budget is exhausted or even degraded
  admission is infeasible; the decision carries a *virtual-time
  retry-after* derived from the projection's next completion, and the
  controller re-gates the job automatically at that time;
* **reject** -- the system is draining, the newcomer's class is below
  the current pressure floor (see :meth:`set_pressure`), its deadline
  could not be met even alone, or it has been deferred too many times.

The feasibility check runs on a *fresh* schedule over the live queries'
engine-internal snapshots, so a corrupt external estimate cannot poison
admission; when even those snapshots are non-finite the check degrades
to budgets only (robustness: the gate must keep functioning when the
projection cannot).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Literal

from repro.core.incremental import IncrementalSchedule
from repro.core.model import weight_for_priority
from repro.sim.jobs import Job
from repro.sim.rdbms import QueryRecord, SimulatedRDBMS

_EPS = 1e-9

Outcome = Literal["admit", "degrade", "defer", "reject"]


@dataclass(frozen=True)
class AdmissionDecision:
    """One typed admission decision, with its justification."""

    time: float
    query_id: str
    #: ``"admit"``, ``"degrade"``, ``"defer"`` or ``"reject"``.
    outcome: Outcome
    reason: str
    #: Absolute virtual time at which a deferred query should retry.
    retry_after: float | None = None
    #: Priority the query was demoted to, for ``"degrade"`` admissions.
    demoted_priority: int | None = None

    @property
    def admitted(self) -> bool:
        """True when the query actually entered the system."""
        return self.outcome in ("admit", "degrade")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Budgets and class floors for an :class:`AdmissionController`.

    Attributes
    ----------
    max_in_flight:
        Cap on live (queued + running + blocked) queries; ``None`` for
        unlimited.
    work_budget:
        Cap on work in flight -- the sum of live queries' estimated
        remaining costs, in U's; ``None`` for unlimited.
    feasibility:
        Whether to run the PI-feasibility check at all.
    degrade_priority:
        Priority assigned to ``"degrade"`` admissions (should map to a
        small scheduling weight).
    allow_degrade:
        Whether infeasible-at-full-weight newcomers without deadlines may
        be admitted demoted instead of deferred.
    min_retry_delay:
        Floor on the defer retry-after gap, virtual seconds.
    max_defers:
        Deferrals allowed per query before it is rejected outright.
    pressure_floors:
        ``(pressure_level, priority_floor)`` pairs: at ladder pressure
        >= *level*, newcomers with priority < *floor* are rejected.  The
        default starts shedding the lowest class at rung 2 and everything
        below normal priority at rung 3.
    """

    max_in_flight: int | None = None
    work_budget: float | None = None
    feasibility: bool = True
    degrade_priority: int = -2
    allow_degrade: bool = True
    min_retry_delay: float = 0.5
    max_defers: int = 25
    pressure_floors: tuple[tuple[int, int], ...] = ((2, 0), (3, 1))

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1 or None, got {self.max_in_flight}"
            )
        if self.work_budget is not None and (
            not math.isfinite(self.work_budget) or self.work_budget <= 0
        ):
            raise ValueError(
                f"work_budget must be finite and > 0, got {self.work_budget}"
            )
        if not math.isfinite(self.min_retry_delay) or self.min_retry_delay <= 0:
            raise ValueError(
                f"min_retry_delay must be finite and > 0, got {self.min_retry_delay}"
            )
        if self.max_defers < 0:
            raise ValueError(f"max_defers must be >= 0, got {self.max_defers}")

    def priority_floor(self, pressure: int) -> int | None:
        """The strictest class floor active at *pressure*, or ``None``."""
        floor: int | None = None
        for level, limit in self.pressure_floors:
            if pressure >= level and (floor is None or limit > floor):
                floor = limit
        return floor


class AdmissionController:
    """Gates submissions to one :class:`SimulatedRDBMS`.

    Use :meth:`submit` as the front door instead of ``rdbms.submit``;
    call :meth:`attach` to also gate scripted
    :class:`~repro.sim.arrivals.ArrivalSchedule` arrivals (the simulator
    consults ``rdbms.admission_controller`` when processing them).

    Parameters
    ----------
    rdbms:
        The simulator to protect.
    policy:
        Budgets and floors; defaults to feasibility-check-only.
    auto_retry:
        Schedule a virtual-time event that re-gates each deferred job at
        its retry-after time.  Deferred jobs keep their *relative*
        deadlines -- the clock starts at actual admission.
    """

    def __init__(
        self,
        rdbms: SimulatedRDBMS,
        policy: AdmissionPolicy | None = None,
        auto_retry: bool = True,
    ) -> None:
        self._rdbms = rdbms
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._auto_retry = auto_retry
        self._pressure = 0
        self._defer_counts: dict[str, int] = {}
        #: Chronological log of every decision taken.
        self.decisions: list[AdmissionDecision] = []
        #: Latest decision per query id.
        self.outcomes: dict[str, AdmissionDecision] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self) -> "AdmissionController":
        """Route the simulator's scripted arrivals through this gate."""
        self._rdbms.admission_controller = self
        return self

    def set_pressure(self, level: int) -> None:
        """Raise/lower the overload pressure (set by the ladder's rung)."""
        if level < 0:
            raise ValueError(f"pressure must be >= 0, got {level}")
        self._pressure = level

    @property
    def pressure(self) -> int:
        """Current overload pressure level (0 = calm)."""
        return self._pressure

    def counts(self) -> dict[str, int]:
        """Decision totals by outcome."""
        out = {"admit": 0, "degrade": 0, "defer": 0, "reject": 0}
        for d in self.decisions:
            out[d.outcome] += 1
        return out

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> AdmissionDecision:
        """Gate *job*; on admit/degrade it enters the RDBMS immediately."""
        return self._gate(job, self._rdbms.submit)

    def resubmit(self, job: Job) -> AdmissionDecision:
        """Gate a retry attempt (same checks, lands in ``rdbms.resubmit``)."""
        return self._gate(job, self._rdbms.resubmit)

    def _gate(
        self, job: Job, enter: Callable[[Job], QueryRecord]
    ) -> AdmissionDecision:
        now = self._rdbms.clock
        qid = job.query_id
        decision = self._decide(job, now)
        if decision.admitted:
            if decision.outcome == "degrade":
                job.priority = self.policy.degrade_priority
                job.weight = weight_for_priority(self.policy.degrade_priority)
            enter(job)
            self._defer_counts.pop(qid, None)
        elif decision.outcome == "defer" and self._auto_retry:
            assert decision.retry_after is not None
            self._rdbms.add_event(
                decision.retry_after,
                lambda _r, j=job, e=enter: self._gate(j, e),
            )
        self._log(decision)
        return decision

    def _decide(self, job: Job, now: float) -> AdmissionDecision:
        qid = job.query_id
        policy = self.policy
        if self._rdbms.draining:
            return self._make(now, qid, "reject", "system is draining")
        floor = policy.priority_floor(self._pressure)
        if floor is not None and job.priority < floor:
            return self._make(
                now, qid, "reject",
                f"overload pressure {self._pressure}: priority {job.priority} "
                f"below floor {floor}",
            )
        cost = job.estimated_remaining_cost()
        if not math.isfinite(cost) or cost < 0:
            return self._make(
                now, qid, "reject",
                f"non-finite cost estimate ({cost}); cannot budget",
            )
        live = [
            r for r in self._rdbms.records().values() if not r.terminal
        ]
        if (
            policy.max_in_flight is not None
            and len(live) >= policy.max_in_flight
        ):
            return self._defer(
                job, now,
                f"in-flight budget full ({len(live)}/{policy.max_in_flight})",
            )
        if policy.work_budget is not None:
            in_flight = sum(
                c for r in live
                if math.isfinite(c := r.job.estimated_remaining_cost())
            )
            if in_flight + cost > policy.work_budget + _EPS:
                return self._defer(
                    job, now,
                    f"work budget full ({in_flight:g} + {cost:g} U "
                    f"> {policy.work_budget:g} U)",
                )
        if not policy.feasibility:
            return self._make(now, qid, "admit", "budgets hold")
        return self._feasibility_decision(job, live, now)

    # ------------------------------------------------------------------
    # PI-feasibility
    # ------------------------------------------------------------------

    def _feasibility_decision(
        self, job: Job, live: list[QueryRecord], now: float
    ) -> AdmissionDecision:
        qid = job.query_id
        snaps = []
        deadlines: dict[str, float] = {}
        for r in live:
            snaps.append(r.job.snapshot())
            if r.deadline_at is not None:
                deadlines[r.job.query_id] = r.deadline_at
        newcomer = job.snapshot()
        if job.deadline is not None:
            deadlines[qid] = now + job.deadline
        verdict = self._feasible(snaps + [newcomer], deadlines, now)
        if verdict is None:
            return self._make(
                now, qid, "admit",
                "budgets hold; projection unavailable (non-finite inputs)",
            )
        feasible, victim = verdict
        if feasible:
            return self._make(
                now, qid, "admit",
                "projection keeps every deadline feasible",
            )
        # The full-weight newcomer breaks a deadline.  A demoted admission
        # barely perturbs the incumbents; try that before deferring --
        # unless the newcomer has its own deadline (best-effort admission
        # of a deadline query just trades one miss for another).
        if self.policy.allow_degrade and job.deadline is None:
            demoted = replace(
                newcomer,
                priority=self.policy.degrade_priority,
                weight=weight_for_priority(self.policy.degrade_priority),
            )
            degraded_verdict = self._feasible(
                snaps + [demoted], deadlines, now
            )
            if degraded_verdict is not None and degraded_verdict[0]:
                return self._make(
                    now, qid, "degrade",
                    f"full weight would break {victim}'s deadline; "
                    f"admitted at priority {self.policy.degrade_priority}",
                )
        return self._defer(
            job, now, f"projection breaks {victim}'s deadline"
        )

    def _feasible(
        self,
        snaps: list,
        deadlines: dict[str, float],
        now: float,
    ) -> tuple[bool, str | None] | None:
        """``(feasible, first_victim)``; ``None`` when unprojectable."""
        if not deadlines:
            return True, None
        try:
            sched = IncrementalSchedule(
                self._rdbms.processing_rate, snaps
            )
        except (ValueError, KeyError):
            return None
        remaining = sched.remaining_times()
        for vid, deadline_at in sorted(deadlines.items()):
            rt = remaining.get(vid)
            if rt is None:
                continue
            if now + rt > deadline_at + _EPS:
                return False, vid
        return True, None

    # ------------------------------------------------------------------
    # Defer bookkeeping
    # ------------------------------------------------------------------

    def _defer(self, job: Job, now: float, why: str) -> AdmissionDecision:
        qid = job.query_id
        n = self._defer_counts.get(qid, 0)
        if n >= self.policy.max_defers:
            return self._make(
                now, qid, "reject",
                f"{why}; deferred {n} times already (cap "
                f"{self.policy.max_defers})",
            )
        self._defer_counts[qid] = n + 1
        retry_at = now + self._retry_gap()
        return self._make(
            now, qid, "defer",
            f"{why}; retry at t={retry_at:.3g}s",
            retry_after=retry_at,
        )

    def _retry_gap(self) -> float:
        """Virtual seconds until capacity plausibly frees up.

        The projection's next completion is the earliest instant the
        in-flight picture can improve; with nothing projectable, fall
        back to the policy's minimum gap.
        """
        gap = self.policy.min_retry_delay
        sched = self._rdbms.shared_schedule()
        if sched is not None:
            nxt = sched.next_finish()
            if nxt is not None and math.isfinite(nxt[0]) and nxt[0] > gap:
                gap = nxt[0]
        return gap

    def _make(
        self,
        now: float,
        qid: str,
        outcome: Outcome,
        reason: str,
        retry_after: float | None = None,
    ) -> AdmissionDecision:
        demoted = (
            self.policy.degrade_priority if outcome == "degrade" else None
        )
        return AdmissionDecision(
            time=now,
            query_id=qid,
            outcome=outcome,
            reason=reason,
            retry_after=retry_after,
            demoted_priority=demoted,
        )

    def _log(self, decision: AdmissionDecision) -> None:
        self.decisions.append(decision)
        self.outcomes[decision.query_id] = decision
        obs = self._rdbms.obs
        if obs is not None:
            obs.metrics.counter(f"qos.admission.{decision.outcome}").inc()
            obs.tracer.emit(
                f"qos.admission.{decision.outcome}",
                decision.time,
                decision.query_id,
                reason=decision.reason,
                retry_after=decision.retry_after,
            )
