"""PI-accuracy telemetry: how good were the estimates, per query, online.

König et al. and Wu et al. (see PAPERS.md) both argue a progress estimator
must *track its own error* while running.  This module does that for every
query of a simulated run:

* each remaining-time estimate any estimator produces is appended to a
  per-(query, estimator) :class:`~repro.core.metrics.StepSeries`;
* when the query finishes, the actual remaining time at every sample
  instant is known exactly (``finish - t``), so the tracker computes the
  paper's Section 5.2.3 *relative error* ``|est - actual| / actual`` for
  the whole trajectory;
* the per-query summary reports the **relative-error profile** (error
  resampled at fixed fractions of the query's observed lifetime -- the
  carry-back resampling of :meth:`StepSeries.sample` handles estimators
  that started late), the **forecast-correction lag** (how long until the
  estimator's error dropped -- and stayed -- below a threshold), and the
  **backend agreement** between the ``incremental`` and ``reference``
  projection backends when both series were recorded.

Everything here is driven by virtual time only, so reports are
deterministic for seeded runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.metrics import StepSeries, mean_finite, relative_error

#: Estimator-series names used for backend-agreement telemetry.
BACKEND_SERIES_PREFIX = "backend:"
BACKEND_INCREMENTAL = BACKEND_SERIES_PREFIX + "incremental"
BACKEND_REFERENCE = BACKEND_SERIES_PREFIX + "reference"

#: Default lifetime fractions of the relative-error profile.
DEFAULT_PROFILE_FRACTIONS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
)


@dataclass(frozen=True)
class EstimatorAccuracy:
    """Accuracy summary of one estimator on one query."""

    estimator: str
    #: Number of estimates recorded before the query finished.
    samples: int
    #: Mean / max Section 5.2.3 relative error over the recorded samples
    #: (non-finite estimates count as ``inf`` and are capped at 10 for the
    #: mean, mirroring the figure benches' policy).
    mean_rel_error: float
    max_rel_error: float
    #: Relative error of the last estimate before the finish.
    final_rel_error: float
    #: Relative error resampled at fixed fractions of the query lifetime:
    #: ``(fraction, rel_error)`` pairs.
    profile: tuple[tuple[float, float], ...]
    #: Seconds from the query's start until the estimator's relative error
    #: dropped below the threshold *and stayed there*; ``inf`` if it never
    #: settled.  The paper's "corrects bad forecasts" claim, quantified.
    correction_lag: float


@dataclass(frozen=True)
class BackendAgreement:
    """Agreement between the incremental and reference backends."""

    #: Number of sample instants where both backends produced an estimate.
    samples: int
    max_abs_diff: float
    #: ``max_abs_diff`` scaled by ``max(1, |reference estimate|)``.
    max_rel_diff: float


@dataclass(frozen=True)
class QueryAccuracy:
    """Accuracy summary of one finished query."""

    query_id: str
    started_at: float
    finished_at: float
    estimators: dict[str, EstimatorAccuracy]
    backend_agreement: BackendAgreement | None

    @property
    def lifetime(self) -> float:
        """Observed running lifetime, seconds."""
        return self.finished_at - self.started_at


@dataclass(frozen=True)
class AccuracyReport:
    """Per-query accuracy summaries for one observed run."""

    queries: tuple[QueryAccuracy, ...]
    #: Queries that never finished (no ground truth, so no summary).
    unfinished: tuple[str, ...]
    error_threshold: float

    def for_query(self, query_id: str) -> QueryAccuracy:
        """The summary of one query; raises :class:`KeyError` if absent."""
        for q in self.queries:
            if q.query_id == query_id:
                return q
        raise KeyError(f"no accuracy summary for query {query_id!r}")

    def worst_backend_rel_diff(self) -> float:
        """Largest backend disagreement across all queries (0 if untracked)."""
        return max(
            (
                q.backend_agreement.max_rel_diff
                for q in self.queries
                if q.backend_agreement is not None
            ),
            default=0.0,
        )


@dataclass
class _QueryLog:
    """Mutable per-query state while the run is live."""

    query_id: str
    started_at: float | None = None
    finished_at: float | None = None
    series: dict[str, StepSeries] = field(default_factory=dict)


class AccuracyTracker:
    """Record estimate trajectories online; summarise accuracy on demand.

    Parameters
    ----------
    error_threshold:
        Relative-error level used by the correction-lag statistic: the lag
        is the time until the estimator's error last crossed *below* this
        threshold (default 0.25, i.e. 25%).
    profile_fractions:
        Lifetime fractions the relative-error profile is resampled at.
    mean_error_cap:
        Cap substituted for non-finite relative errors when averaging
        (see :func:`repro.core.metrics.mean_finite`).
    """

    def __init__(
        self,
        error_threshold: float = 0.25,
        profile_fractions: tuple[float, ...] = DEFAULT_PROFILE_FRACTIONS,
        mean_error_cap: float = 10.0,
    ) -> None:
        if not (math.isfinite(error_threshold) and error_threshold > 0):
            raise ValueError(
                f"error_threshold must be finite and > 0, got {error_threshold}"
            )
        if not profile_fractions:
            raise ValueError("profile_fractions must not be empty")
        for f in profile_fractions:
            if not 0 < f < 1:
                raise ValueError(
                    f"profile fractions must lie in (0, 1), got {f}"
                )
        self._threshold = error_threshold
        self._fractions = tuple(profile_fractions)
        self._cap = mean_error_cap
        self._logs: dict[str, _QueryLog] = {}

    # ------------------------------------------------------------------
    # Online recording
    # ------------------------------------------------------------------

    def _log(self, query_id: str) -> _QueryLog:
        if query_id not in self._logs:
            self._logs[query_id] = _QueryLog(query_id)
        return self._logs[query_id]

    def mark_started(self, query_id: str, time: float) -> None:
        """Record that *query_id* started running at virtual *time*.

        The first start wins: retries do not rebase the lifetime (the
        budget an operator cares about is total occupancy).
        """
        log = self._log(query_id)
        if log.started_at is None:
            log.started_at = time

    def mark_finished(self, query_id: str, time: float) -> None:
        """Record that *query_id* finished at virtual *time*."""
        self._log(query_id).finished_at = time

    def observe(
        self, query_id: str, estimator: str, time: float, seconds: float
    ) -> None:
        """Record one remaining-time estimate for *query_id*.

        Non-finite estimates are recorded as-is: they show up as infinite
        relative error, which is exactly what "the estimator declined to
        answer" should cost it in the accuracy report.
        """
        log = self._log(query_id)
        series = log.series.setdefault(estimator, StepSeries())
        series.append(time, seconds)

    @property
    def tracked_queries(self) -> tuple[str, ...]:
        """Ids of queries with any recorded state, sorted."""
        return tuple(sorted(self._logs))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def report(self) -> AccuracyReport:
        """Summarise every finished query (deterministic, sorted by id)."""
        done: list[QueryAccuracy] = []
        unfinished: list[str] = []
        for qid in sorted(self._logs):
            log = self._logs[qid]
            if log.finished_at is None:
                unfinished.append(qid)
                continue
            done.append(self._summarise(log))
        return AccuracyReport(
            queries=tuple(done),
            unfinished=tuple(unfinished),
            error_threshold=self._threshold,
        )

    def _summarise(self, log: _QueryLog) -> QueryAccuracy:
        finish = log.finished_at
        assert finish is not None
        earliest_sample = min(
            (s.first_time() for s in log.series.values() if len(s)),
            default=finish,
        )
        start = log.started_at if log.started_at is not None else earliest_sample
        start = min(start, earliest_sample, finish)
        estimators: dict[str, EstimatorAccuracy] = {}
        for name in sorted(log.series):
            series = log.series[name]
            summary = self._summarise_estimator(name, series, start, finish)
            if summary is not None:
                estimators[name] = summary
        agreement = self._backend_agreement(log, finish)
        return QueryAccuracy(
            query_id=log.query_id,
            started_at=start,
            finished_at=finish,
            estimators=estimators,
            backend_agreement=agreement,
        )

    def _summarise_estimator(
        self, name: str, series: StepSeries, start: float, finish: float
    ) -> EstimatorAccuracy | None:
        pairs = [(t, v) for t, v in series if t < finish]
        if not pairs:
            return None
        errors = [
            (t, relative_error(est, finish - t)) for t, est in pairs
        ]
        rel_values = [e for _, e in errors]
        # Profile over the query's observed lifetime.  The resample grid
        # can start before the estimator's first sample (a query observed
        # late); StepSeries.sample carries the first value back.
        lifetime = finish - start
        profile: list[tuple[float, float]] = []
        if lifetime > 0:
            grid = [start + f * lifetime for f in self._fractions]
            grid = [t for t in grid if t < finish]
            sampled = series.sample(grid, carry_back=True)
            profile = [
                (
                    round((t - start) / lifetime, 12),
                    relative_error(est, finish - t),
                )
                for t, est in zip(grid, sampled)
            ]
        # Correction lag: time from start until the error is last seen
        # above the threshold (the estimate settled after that sample).
        lag = 0.0
        for t, err in errors:
            if err > self._threshold:
                lag = math.inf
        if math.isinf(lag):
            settled: float | None = None
            for t, err in errors:
                if err > self._threshold:
                    settled = None
                elif settled is None:
                    settled = t
            lag = (settled - start) if settled is not None else math.inf
        return EstimatorAccuracy(
            estimator=name,
            samples=len(pairs),
            mean_rel_error=mean_finite(rel_values, cap=self._cap),
            max_rel_error=max(rel_values),
            final_rel_error=rel_values[-1],
            profile=tuple(profile),
            correction_lag=lag,
        )

    def _backend_agreement(
        self, log: _QueryLog, finish: float
    ) -> BackendAgreement | None:
        inc = log.series.get(BACKEND_INCREMENTAL)
        ref = log.series.get(BACKEND_REFERENCE)
        if inc is None or ref is None or not len(inc) or not len(ref):
            return None
        inc_points = {t: v for t, v in inc if t < finish}
        max_abs = 0.0
        max_rel = 0.0
        samples = 0
        for t, ref_v in ref:
            if t >= finish or t not in inc_points:
                continue
            samples += 1
            diff = abs(inc_points[t] - ref_v)
            max_abs = max(max_abs, diff)
            max_rel = max(max_rel, diff / max(1.0, abs(ref_v)))
        if samples == 0:
            return None
        return BackendAgreement(
            samples=samples, max_abs_diff=max_abs, max_rel_diff=max_rel
        )


def format_accuracy(report: AccuracyReport) -> str:
    """Render an :class:`AccuracyReport` as deterministic text lines.

    Only virtual-time-derived numbers appear, so the output is identical
    across repeated seeded runs -- the property the CLI test asserts.
    """
    lines = [
        f"accuracy report ({len(report.queries)} finished, "
        f"{len(report.unfinished)} unfinished; "
        f"threshold {report.error_threshold:g})"
    ]
    for q in report.queries:
        lines.append(
            f"  {q.query_id}: lifetime {q.lifetime:.2f}s "
            f"[{q.started_at:.2f} -> {q.finished_at:.2f}]"
        )
        for name, e in q.estimators.items():
            lag = "never" if math.isinf(e.correction_lag) else f"{e.correction_lag:.2f}s"
            lines.append(
                f"    {name}: n={e.samples} mean_rel={e.mean_rel_error:.4f} "
                f"max_rel={e.max_rel_error:.4f} final_rel={e.final_rel_error:.4f} "
                f"settle={lag}"
            )
            if e.profile:
                prof = " ".join(f"{f:.0%}:{err:.3f}" for f, err in e.profile)
                lines.append(f"      profile {prof}")
        if q.backend_agreement is not None:
            a = q.backend_agreement
            lines.append(
                f"    backends: n={a.samples} max_abs={a.max_abs_diff:.3e} "
                f"max_rel={a.max_rel_diff:.3e}"
            )
    if report.unfinished:
        lines.append("  unfinished: " + ", ".join(report.unfinished))
    return "\n".join(lines)
