"""Process-wide observability wiring with a zero-overhead disabled path.

An :class:`Observability` bundles the three telemetry surfaces of one
observed run -- a :class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry` and an
:class:`~repro.obs.accuracy.AccuracyTracker`.

Instrumented constructors call :func:`resolve` **once** and store the
result; when observability is disabled that result is ``None``, so every
hot-path guard is a single ``if self._obs is not None`` identity check and
the steady-state cost of the instrumentation rounds to zero (the property
``benchmarks/test_bench_obs_overhead.py`` enforces at 5%).

Typical use::

    with observed() as obs:
        run_mcq(config)
    print(obs.metrics.as_dict())

or explicitly, for code that threads the bundle through::

    obs = Observability.enabled(trace_path="run.jsonl")
    rdbms = SimulatedRDBMS(..., obs=obs)
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.accuracy import AccuracyTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlSink, MemorySink, Tracer


class Observability:
    """One run's telemetry bundle: tracer + metrics + accuracy tracker."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        accuracy: AccuracyTracker | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(MemorySink())
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.accuracy = accuracy if accuracy is not None else AccuracyTracker()

    @classmethod
    def enabled(cls, trace_path: str | Path | None = None) -> "Observability":
        """A fresh bundle; events go to *trace_path* (JSONL) if given."""
        sink = JsonlSink(trace_path) if trace_path is not None else MemorySink()
        return cls(tracer=Tracer(sink))

    def close(self) -> None:
        """Flush and close the trace sink."""
        self.tracer.close()


#: The process-global bundle; ``None`` means observability is disabled.
_current: Observability | None = None


def current() -> Observability | None:
    """The installed global bundle, or ``None`` when disabled."""
    return _current


def install(obs: Observability) -> Observability:
    """Install *obs* as the process-global bundle and return it."""
    global _current
    _current = obs
    return obs


def uninstall() -> None:
    """Disable global observability (instrumented objects built afterwards
    see ``None``; already-built objects keep the bundle they resolved)."""
    global _current
    _current = None


def resolve(obs: Observability | None) -> Observability | None:
    """The bundle an instrumented constructor should store.

    An explicitly passed bundle wins; otherwise the global one (usually
    ``None``).  Constructors call this once and cache the result so hot
    paths never consult the global again.
    """
    return obs if obs is not None else _current


@contextmanager
def observed(
    trace_path: str | Path | None = None,
    obs: Observability | None = None,
) -> Iterator[Observability]:
    """Install a bundle for the duration of a ``with`` block.

    Restores the previously installed bundle (or disabled state) on exit
    and closes the bundle's sink.
    """
    bundle = obs if obs is not None else Observability.enabled(trace_path)
    previous = _current
    install(bundle)
    try:
        yield bundle
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)
        bundle.close()
