"""Structured event/span tracing for simulated runs.

The adaptivity claims of the paper (Sections 2.4, 4, 5.2.3) are about
*behaviour over time*: the PI re-estimates, the workload manager revises,
the fault layer injects, the scheduler invalidates.  This module records
that behaviour as a flat stream of structured events, each stamped with

* ``virtual_time`` -- the simulation clock the event happened at (the
  deterministic axis every test and report uses), and
* ``wall_time`` -- a monotonic host timestamp (``time.perf_counter``),
  used only for overhead analysis and never for assertions.

Events are plain dicts so the JSONL sink is a straight ``json.dumps`` per
line and downstream tooling needs no schema classes.  The canonical event
shape is documented in :data:`EVENT_FIELDS` and enforced by
:func:`validate_event` / :func:`validate_trace_file` (the CI trace gate).

The disabled path costs nothing: instrumented code holds ``None`` instead
of a tracer and guards every emission with one identity check (see
:mod:`repro.obs.runtime`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

#: Required keys of every trace event and their accepted types.
#: ``virtual_time`` is ``None`` for events with no simulation clock in
#: scope (e.g. a pure algorithm call such as a projection run).
EVENT_FIELDS: dict[str, tuple[type, ...]] = {
    "seq": (int,),
    "event": (str,),
    "virtual_time": (float, int, type(None)),
    "wall_time": (float, int),
}

#: Optional well-known key: the query an event is about (or ``None``).
_OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {
    "query_id": (str, type(None)),
}

#: Types permitted for free-form extra fields (kept JSON-scalar so every
#: event serialises to one flat JSONL object).
_SCALAR = (str, int, float, bool, type(None))


class TraceSchemaError(ValueError):
    """An event (or trace file) violates the documented event schema."""


def validate_event(event: dict) -> None:
    """Check one event dict against the schema; raise :class:`TraceSchemaError`.

    Required fields must be present with the right types, ``event`` must be
    a non-empty dotted name, and every extra field must be a JSON scalar.
    """
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event must be an object, got {type(event).__name__}")
    for key, types in EVENT_FIELDS.items():
        if key not in event:
            raise TraceSchemaError(f"event missing required field {key!r}: {event}")
        if not isinstance(event[key], types) or isinstance(event[key], bool):
            raise TraceSchemaError(
                f"field {key!r} has type {type(event[key]).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    if not event["event"]:
        raise TraceSchemaError("field 'event' must be a non-empty name")
    if event["seq"] < 0:
        raise TraceSchemaError(f"field 'seq' must be >= 0, got {event['seq']}")
    for key, value in event.items():
        if key in EVENT_FIELDS:
            continue
        if key in _OPTIONAL_FIELDS:
            if not isinstance(value, _OPTIONAL_FIELDS[key]):
                raise TraceSchemaError(
                    f"field {key!r} has type {type(value).__name__}"
                )
            continue
        if not isinstance(value, _SCALAR):
            raise TraceSchemaError(
                f"extra field {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )


def validate_events(events: Iterable[dict]) -> int:
    """Validate a stream of events; returns how many were checked.

    Also enforces that ``seq`` values are strictly increasing -- the sink
    must not drop, duplicate or reorder events.
    """
    count = 0
    last_seq = -1
    for event in events:
        validate_event(event)
        if event["seq"] <= last_seq:
            raise TraceSchemaError(
                f"seq {event['seq']} not increasing (previous {last_seq})"
            )
        last_seq = event["seq"]
        count += 1
    return count


def validate_trace_file(path: str | Path) -> int:
    """Validate a JSONL trace file; returns the number of events.

    Raises :class:`TraceSchemaError` on malformed JSON or schema violations.
    """
    path = Path(path)

    def _events() -> Iterator[dict]:
        with path.open() as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as exc:
                    raise TraceSchemaError(
                        f"{path}:{lineno}: invalid JSON: {exc}"
                    ) from None

    return validate_events(_events())


class MemorySink:
    """Retain emitted events in a list (the default sink)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        """Append *event* to :attr:`events`."""
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        """No-op: memory sinks hold no resources."""


class JsonlSink:
    """Append events to a JSONL file, one object per line.

    Use as a context manager (or call :meth:`close`) so the file is
    flushed deterministically before validation reads it back.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = self.path.open("w")
        self.written = 0

    def write(self, event: dict) -> None:
        """Serialise *event* as one JSON line (keys sorted)."""
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """Emit structured events (and spans) to a sink.

    Parameters
    ----------
    sink:
        Object with ``write(event_dict)``; defaults to a fresh
        :class:`MemorySink` (events retained on :attr:`events`).
    wall_clock:
        Monotonic clock used for ``wall_time`` stamps; injectable for
        deterministic tests.
    """

    def __init__(
        self,
        sink: MemorySink | JsonlSink | None = None,
        wall_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self._wall = wall_clock
        self._seq = 0

    @property
    def events(self) -> list[dict]:
        """Events retained in memory (empty for file-only sinks)."""
        if isinstance(self.sink, MemorySink):
            return self.sink.events
        return []

    @property
    def emitted(self) -> int:
        """Total number of events emitted so far."""
        return self._seq

    def emit(
        self,
        event: str,
        virtual_time: float | None,
        query_id: str | None = None,
        **fields: Any,
    ) -> None:
        """Record one event.

        ``event`` is a dotted lowercase name (``"query.finish"``,
        ``"watchdog.abort"``); ``virtual_time`` is the simulation clock or
        ``None`` when no simulation is in scope; extra keyword fields must
        be JSON scalars.
        """
        record: dict[str, Any] = {
            "seq": self._seq,
            "event": event,
            "virtual_time": float(virtual_time) if virtual_time is not None else None,
            "wall_time": self._wall(),
        }
        if query_id is not None:
            record["query_id"] = query_id
        for key, value in fields.items():
            if isinstance(value, float) and value != value:  # NaN: not JSON
                value = "nan"
            record[key] = value
        self._seq += 1
        self.sink.write(record)

    @contextmanager
    def span(
        self,
        event: str,
        virtual_time: float | None,
        query_id: str | None = None,
        **fields: Any,
    ) -> Iterator[None]:
        """Emit ``<event>.begin`` now and ``<event>.end`` on exit.

        The end event carries ``wall_elapsed`` (seconds of host time spent
        inside the span) -- the raw material of the overhead methodology in
        ``docs/PERFORMANCE.md``.
        """
        start = self._wall()
        self.emit(f"{event}.begin", virtual_time, query_id, **fields)
        try:
            yield
        finally:
            self.emit(
                f"{event}.end",
                virtual_time,
                query_id,
                wall_elapsed=self._wall() - start,
                **fields,
            )

    def close(self) -> None:
        """Close the underlying sink (flushes JSONL files)."""
        self.sink.close()
