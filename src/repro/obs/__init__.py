"""Observability layer: tracing, metrics and PI-accuracy telemetry.

See ``docs/OBSERVABILITY.md`` for the event schema, metric names and the
accuracy-report fields, and ``docs/PERFORMANCE.md`` for the overhead
methodology behind the disabled-path guarantee.
"""

from repro.obs.accuracy import (
    AccuracyReport,
    AccuracyTracker,
    BackendAgreement,
    EstimatorAccuracy,
    QueryAccuracy,
    format_accuracy,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
)
from repro.obs.report import (
    ObservedRun,
    format_observed_run,
    run_observed_mcq,
)
from repro.obs.runtime import (
    Observability,
    current,
    install,
    observed,
    resolve,
    uninstall,
)
from repro.obs.tracer import (
    EVENT_FIELDS,
    JsonlSink,
    MemorySink,
    Tracer,
    TraceSchemaError,
    validate_event,
    validate_events,
    validate_trace_file,
)

__all__ = [
    "AccuracyReport",
    "AccuracyTracker",
    "BackendAgreement",
    "Counter",
    "DEFAULT_BOUNDARIES",
    "EVENT_FIELDS",
    "EstimatorAccuracy",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "Observability",
    "ObservedRun",
    "QueryAccuracy",
    "TraceSchemaError",
    "Tracer",
    "current",
    "format_accuracy",
    "format_metrics",
    "format_observed_run",
    "install",
    "observed",
    "resolve",
    "run_observed_mcq",
    "uninstall",
    "validate_event",
    "validate_events",
    "validate_trace_file",
]
