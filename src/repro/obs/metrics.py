"""A small metrics registry: counters, gauges and fixed-bucket histograms.

Every metric exposes itself as plain dicts (:meth:`MetricsRegistry.as_dict`)
so a run's metrics can be printed, asserted in tests, or merged into the
persistent bench reports via
:func:`repro.sim.scale.merge_bench_json` -- the same file the scalability
harness writes (``BENCH_scale.json``).

Histograms use *fixed* bucket boundaries chosen at creation: no dynamic
resizing, no randomness, so two runs of the same seeded simulation produce
byte-identical metric dumps.

Metric names are dotted lowercase (``"rdbms.finished"``,
``"projection.backend.incremental"``); the registry is the single flat
namespace for one observed run.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Sequence

#: Default histogram boundaries (seconds-ish scale, powers of ten halves).
DEFAULT_BOUNDARIES: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram of observed values.

    ``boundaries`` are the *upper* edges of the first ``len(boundaries)``
    buckets; one overflow bucket catches everything beyond the last edge.
    NaN observations are rejected (a corrupted measurement must fail loudly,
    matching :mod:`repro.core.validation`).
    """

    __slots__ = ("boundaries", "counts", "total", "count", "min", "max")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_BOUNDARIES) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ValueError("histogram needs at least one boundary")
        if any(b != b for b in edges):
            raise ValueError("histogram boundaries must not be NaN")
        if list(edges) != sorted(set(edges)):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        if value != value:
            raise ValueError("cannot observe NaN")
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form: boundaries, per-bucket counts and summary stats."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create registry holding one run's metrics.

    A name is permanently bound to its first-created kind: asking for
    ``counter("x")`` after ``gauge("x")`` raises, catching instrumentation
    typos instead of silently splitting a metric.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str, own: dict) -> None:
        if name in own:
            return
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        self._check_free(name, "counter", self._counters)
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        self._check_free(name, "gauge", self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BOUNDARIES
    ) -> Histogram:
        """The histogram called *name* (created on first use).

        ``boundaries`` only applies at creation; later calls return the
        existing histogram unchanged.
        """
        self._check_free(name, "histogram", self._histograms)
        if name not in self._histograms:
            self._histograms[name] = Histogram(boundaries)
        return self._histograms[name]

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 if never touched)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0.0

    def names(self) -> tuple[str, ...]:
        """All registered metric names, sorted."""
        return tuple(
            sorted([*self._counters, *self._gauges, *self._histograms])
        )

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot of every metric, sorted by name.

        This is the payload merged into ``BENCH_*.json`` files via
        :func:`repro.sim.scale.merge_bench_json`.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge_into(self, path, section: str = "metrics") -> dict:
        """Merge :meth:`as_dict` into the bench JSON report at *path*."""
        from repro.sim.scale import merge_bench_json

        return merge_bench_json(path, section, self.as_dict())


def format_metrics(registry: MetricsRegistry, kinds: Iterable[str] = ()) -> str:
    """Render a registry as deterministic ``name value`` lines.

    ``kinds`` optionally restricts output (``"counters"``, ``"gauges"``,
    ``"histograms"``); the default prints everything.  Histograms render as
    ``count/mean/max`` summaries.
    """
    data = registry.as_dict()
    wanted = set(kinds) or {"counters", "gauges", "histograms"}
    lines = []
    if "counters" in wanted:
        for name, value in data["counters"].items():
            lines.append(f"{name} {value:g}")
    if "gauges" in wanted:
        for name, value in data["gauges"].items():
            lines.append(f"{name} {value:g}")
    if "histograms" in wanted:
        for name, h in data["histograms"].items():
            mx = h["max"] if h["max"] is not None else 0.0
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"{name} count={h['count']} mean={mean:.6g} max={mx:.6g}"
            )
    return "\n".join(lines)
