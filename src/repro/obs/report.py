"""Run a fully observed seeded MCQ experiment and summarise its telemetry.

This is the backing of ``repro report --observe`` (and the CI observability
gate): one :func:`~repro.experiments.mcq.run_mcq` run with the process-global
observability installed, tracing every simulator seam, sampling both
projection backends for agreement, and rendering a **deterministic**
summary -- every number in it derives from virtual time, so repeated runs
with the same seed produce byte-identical output (wall-clock stamps exist
only inside the trace file and are never printed).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.accuracy import AccuracyReport, format_accuracy
from repro.obs.metrics import format_metrics
from repro.obs.runtime import Observability, observed


@dataclass
class ObservedRun:
    """Everything one observed MCQ run produced."""

    obs: Observability
    accuracy: AccuracyReport
    #: The MCQResult of the underlying experiment.
    result: object
    #: Path of the JSONL trace, if one was written.
    trace_path: Path | None
    #: Number of trace events emitted.
    events: int


def run_observed_mcq(
    seed: int = 1,
    trace_path: str | Path | None = None,
    n_queries: int | None = None,
) -> ObservedRun:
    """Run one seeded MCQ experiment with full observability.

    The run samples the multi-query PI per projection backend, so the
    accuracy report includes incremental-vs-reference agreement.
    """
    from repro.experiments.mcq import MCQConfig, run_mcq

    kwargs = {"seed": seed, "with_backend_agreement": True}
    if n_queries is not None:
        kwargs["n_queries"] = n_queries
    config = MCQConfig(**kwargs)
    with observed(trace_path) as obs:
        result = run_mcq(config)
        events = obs.tracer.emitted
    return ObservedRun(
        obs=obs,
        accuracy=obs.accuracy.report(),
        result=result,
        trace_path=Path(trace_path) if trace_path is not None else None,
        events=events,
    )


def format_observed_run(run: ObservedRun) -> str:
    """Render an :class:`ObservedRun` as deterministic text.

    Counters and gauges are virtual-time-driven and printed; histograms
    carry wall-time-derived figures for some metrics, so only those known
    to be deterministic are included (``rdbms.query_lifetime``,
    ``projection.events``).
    """
    lines = ["observed MCQ run"]
    lines.append(f"trace events: {run.events}")
    if run.trace_path is not None:
        lines.append(f"trace file: {run.trace_path}")
    lines.append("")
    lines.append("metrics (counters):")
    for line in format_metrics(run.obs.metrics, kinds=("counters",)).splitlines():
        lines.append("  " + line)
    lines.append("")
    lines.append(format_accuracy(run.accuracy))
    return "\n".join(lines)
