#!/usr/bin/env python3
"""Forecast-aware estimation under a query stream (paper Section 2.4 / 5.2.3).

Queries keep arriving as a Poisson process while ten queries are running.
The multi-query PI is given a *wrong* arrival rate; an adaptive forecaster
blends the prior with observed arrivals and the estimates self-correct over
time -- the paper's Figure 10 behaviour.

Run:  python examples/streaming_workload.py
"""

from repro.core.forecast import WorkloadForecast
from repro.experiments.scq import (
    SCQConfig,
    mean_arrival_cost,
    run_adaptive_trace,
    simulate_scq_run,
    evaluate_run,
)


def main() -> None:
    config = SCQConfig(runs=1, seed=77)
    c_bar = mean_arrival_cost(config)
    true_lambda = 0.03

    print(f"True arrival rate lambda = {true_lambda}/s, "
          f"average query cost c_bar = {c_bar:.1f} U\n")

    # --- time-0 estimates under different beliefs about the future -------
    run = simulate_scq_run(config, true_lambda, seed=config.seed)
    print("Time-0 relative error for the last-finishing query:")
    for lp in (0.0, 0.03, 0.06, 0.15):
        forecast = (
            WorkloadForecast(arrival_rate=lp, average_cost=c_bar) if lp else None
        )
        errors = evaluate_run(run, forecast)
        label = f"lambda' = {lp}" if lp else "no forecast "
        print(f"  multi-query ({label}): {errors.multi_last():6.1%}")
    errors = evaluate_run(run, None)
    print(f"  single-query            : {errors.single_last():6.1%}")

    # --- adaptive correction over time ------------------------------------
    print("\nAdaptive correction with a wrong prior (lambda' = 0.05):")
    trace = run_adaptive_trace(
        config, true_lambda=true_lambda, lambda_primes=(0.05,),
    )
    series = trace.series[0.05]
    for t, est in series[:: max(len(series) // 8, 1)]:
        actual = trace.finish_time - t
        print(f"  t={t:6.1f}s  estimate={est:7.1f}s  actual={actual:7.1f}s")
    print(f"\ninitial relative error: {trace.initial_error(0.05):6.1%}")
    print(f"final relative error:   {trace.final_error(0.05):6.1%}")


if __name__ == "__main__":
    main()
