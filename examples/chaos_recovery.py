#!/usr/bin/env python3
"""Chaos engineering for the simulated RDBMS: inject faults, watch it recover.

The paper's multi-query PIs are pitched as *workload management* inputs, and
workload management earns its keep exactly when things go wrong.  This
script scripts a bad day for a four-query workload:

  * a system-wide brownout halves the processing rate for 10 s,
  * one query crashes mid-flight and is resubmitted with backoff,
  * one query stalls (a lock wait) for 4 s,
  * the runaway query's statistics are destroyed (NaN remaining cost),
    which disables the PI for the whole snapshot -- so the runaway-query
    watchdog falls back to its observed-work heuristic and still catches it.

At the end, every query is terminal: three finished (one on its second
attempt), the runaway was aborted by the watchdog, and the full recovery
timeline can be reconstructed from the injector, retry and watchdog logs
plus each query's trace.

Run:  python examples/chaos_recovery.py
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import Brownout, FaultPlan, QueryCrash, QueryStall, StatsCorruption
from repro.faults.retry import RetryController, RetryPolicy
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.watchdog import RunawayQueryWatchdog

COSTS = {"etl": 120.0, "report": 80.0, "runaway": 900.0, "lookup": 60.0}
RATE = 10.0  # U/s
BUDGET = 60.0  # per-query watchdog budget, virtual seconds


def build_plan() -> FaultPlan:
    """One fault of each shape, aimed at this workload."""
    return FaultPlan.of(
        Brownout(start=5.0, duration=10.0, factor=0.5),
        QueryCrash("report", at_fraction=0.5, reason="simulated node loss"),
        QueryStall("etl", at=8.0, duration=4.0),
        StatsCorruption(
            start=0.0, duration=None, factor=float("nan"), query_id="runaway"
        ),
    )


def main() -> None:
    """Run the chaos scenario and print the recovery story."""
    rdbms = SimulatedRDBMS(processing_rate=RATE)
    for qid, cost in COSTS.items():
        rdbms.submit(SyntheticJob(qid, cost))

    plan = build_plan()
    print("fault plan:")
    for line in plan.describe().splitlines():
        print(f"  {line}")

    injector = FaultInjector(rdbms, plan)
    injector.arm()
    retries = RetryController(
        rdbms, RetryPolicy(max_attempts=3, base_delay=2.0, multiplier=2.0)
    )
    watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=BUDGET)
    watchdog.attach()

    rdbms.run_to_completion(max_time=1000.0)

    print("\ninjections:")
    for line in injector.timeline():
        print(f"  {line}")
    print("\nretries:")
    for event in retries.events:
        print(
            f"  t={event.time:6.2f}s {event.action:<12} {event.query_id} "
            f"(attempt {event.attempt}) {event.detail}"
        )
    print("\nwatchdog:")
    for action in watchdog.actions:
        mode = "fallback" if action.used_fallback else "PI"
        print(f"  t={action.time:6.2f}s {action.action:<12} {action.query_id} "
              f"[{mode}] {action.reason}")

    print("\noutcome:")
    for qid in COSTS:
        record = rdbms.record(qid)
        print(f"  {qid:<8} {record.status:<9} attempts={record.attempts} "
              f"done={record.job.completed_work:.1f}U")

    # The invariants the chaos tests assert, checked live here too.
    assert all(rdbms.record(qid).terminal for qid in COSTS)
    assert rdbms.record("report").status == "finished"
    assert rdbms.record("report").attempts == 2
    assert rdbms.record("runaway").status == "aborted"
    assert watchdog.fallback_engaged
    print("\nall queries terminal; crash retried to completion; "
          "runaway caught on the fallback path.")


if __name__ == "__main__":
    main()
