#!/usr/bin/env python3
"""Adaptive maintenance management under bad estimates (paper Section 4).

The paper's answer to imprecise estimates is adaptivity: "revisiting the
workload management decisions periodically if the inaccuracies of the model
have resulted in suboptimal decisions."

This script sets up a maintenance window where every query *underreports*
its remaining cost by half (a severe Assumption 2 violation).  A one-shot
plan based on those estimates keeps too much work and blows the deadline;
the adaptive manager starts from the same wrong plan but re-checks the
projection every few seconds and aborts more queries as the estimates are
exposed, draining (nearly) on time.

Run:  python examples/adaptive_manager.py
"""

from repro.sim.jobs import CostNoiseJob, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.manager import run_adaptive_maintenance
from repro.wm.policies import decide_multi_pi, execute_policy

COSTS = [60.0, 90.0, 120.0, 150.0, 200.0]
UNDERREPORT = 0.5  # estimates claim half the true remaining cost
DEADLINE = 250.0


def build() -> SimulatedRDBMS:
    db = SimulatedRDBMS(processing_rate=1.0)
    for i, cost in enumerate(COSTS):
        job = CostNoiseJob(SyntheticJob(f"Q{i + 1}", cost), UNDERREPORT)
        db.submit(job)
    return db


def main() -> None:
    t_finish = sum(COSTS)  # true drain time with C = 1
    print(f"5 queries, true t_finish = {t_finish:.0f}s, deadline = {DEADLINE:.0f}s")
    print(f"every query underreports its remaining cost by {UNDERREPORT:.0%}\n")

    # --- one-shot plan (operation O2' only) -------------------------------
    db = build()
    outcome = execute_policy(db, decide_multi_pi, DEADLINE)
    print("one-shot multi-query-PI plan:")
    print(f"  aborted up front: {list(outcome.aborted_upfront) or 'nothing'}")
    print(f"  aborted at the deadline (missed): {list(outcome.aborted_at_deadline)}")
    print(f"  unfinished work: {outcome.unfinished_fraction:.0%} of total\n")

    # --- adaptive manager (plan + periodic revision) -----------------------
    db = build()
    manager = run_adaptive_maintenance(db, deadline=DEADLINE, check_interval=10.0)
    print("adaptive manager (re-plans every 10s):")
    for event in manager.events:
        if event.aborted:
            print(
                f"  t={event.time:6.1f}s estimates exceed the {event.time_left:5.1f}s "
                f"left -> abort {list(event.aborted)} "
                f"(projected drain after: {event.projected_drain:.1f}s)"
            )
    finished = [
        qid for qid, rec in db.records().items() if rec.status == "finished"
    ]
    print(f"  finished queries: {sorted(finished)}")
    print(f"  total aborted: {sorted(manager.total_aborted)}")
    print(f"  corrective revisions: {manager.revision_count}")


if __name__ == "__main__":
    main()
