#!/usr/bin/env python3
"""A node dies mid-query; the cluster shrugs: failover, work preserved,
global PI finite throughout, results byte-identical to single-node.

Walks the whole `repro.dist` story on a small 3-shard cluster:

  * TPC-R tables block-partitioned across three nodes, replication 2,
  * one pushdown scan and one gather join running concurrently,
  * node1 crashes at t=1.5 -- its sub-queries fail over to replicas and
    resume from their last operator checkpoint,
  * the global progress indicator (remaining = slowest shard) is sampled
    every epoch and must never go NaN/inf; while the dead node's shards
    are dark their contributions are carried back and flagged degraded,
  * at the end, both result sets are compared byte-for-byte against
    single-node execution of the same SQL.

Run:  python examples/sharded_failover.py
"""

import math

from repro.dist import ClusterFaultInjector, ShardedCluster, load_tpcr
from repro.faults.plan import FaultPlan, NodeCrash
from repro.workload.tpcr import TpcrConfig, generate

CONFIG = TpcrConfig(scale=1 / 8000, seed=0)  # 3,000 lineitem rows
QUERIES = {
    "scan": "SELECT * FROM lineitem WHERE partkey > 0",
    "join": "SELECT p.partkey, SUM(l.extendedprice) FROM part_1 p, "
            "lineitem l WHERE p.partkey = l.partkey "
            "GROUP BY p.partkey ORDER BY p.partkey",
}


def main() -> None:
    cluster = ShardedCluster(
        n_shards=3, replication=2, processing_rate=10.0,
        checkpoint_interval=0.25,
    )
    load_tpcr(cluster, config=CONFIG)
    for qid, sql in QUERIES.items():
        dq = cluster.submit(qid, sql)
        print(f"submitted {qid} [{dq.strategy}]")

    injector = ClusterFaultInjector(
        cluster, FaultPlan.of(NodeCrash("node1", at=1.5))
    )
    injector.arm()

    saw_degraded = False
    t = 0.0
    while not all(dq.terminal for dq in cluster.queries().values()):
        t += 0.5
        assert t < 1000.0, "cluster failed to quiesce"
        cluster.run_until(t)
        for qid, est in cluster.estimates().items():
            assert math.isfinite(est.remaining_seconds), qid
            saw_degraded |= est.degraded

    print("\nfault/recovery log:")
    for event in injector.log:
        print(f"  t={event.time:5.2f}s  {event.kind:<14} {event.node_id}  "
              f"{event.description}")

    single = generate(CONFIG).db
    for qid, sql in QUERIES.items():
        dq = cluster.query(qid)
        assert dq.finished, dq.error
        assert cluster.result_rows(qid) == single.query(sql), qid
        print(f"{qid}: finished t={dq.finished_at:.1f}s, "
              f"{len(dq.result)} rows, identical to single-node")

    assert cluster.failovers >= 1, "crash should have forced a failover"
    assert saw_degraded, "outage should have flagged degraded estimates"
    total = cluster.work_preserved + cluster.work_lost
    print(f"failovers: {cluster.failovers}; work preserved "
          f"{cluster.work_preserved:.1f}U of {total:.1f}U "
          f"({cluster.work_preserved / total:.0%})")


if __name__ == "__main__":
    main()
