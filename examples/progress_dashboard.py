#!/usr/bin/env python3
"""A live progress dashboard over a concurrent workload (paper Fig 3/4).

Reproduces the MCQ experiment interactively: ten Zipf-sized queries run
concurrently; every few (virtual) seconds the dashboard prints each query's
completion bar, the single-query estimate and the multi-query estimate.
Watch the single-query column overestimate the big queries early on.

Run:  python examples/progress_dashboard.py
"""

import random

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.single_query import SingleQueryProgressIndicator
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.zipf import ZipfSampler


def bar(fraction: float, width: int = 20) -> str:
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def main() -> None:
    rng = random.Random(7)
    sizes = ZipfSampler.over_range(1.2, 100, rng).sample_many(10)

    rdbms = SimulatedRDBMS(processing_rate=10.0)
    for i, size in enumerate(sizes, start=1):
        cost = size * 30.0
        done = rng.uniform(0, 0.9) * cost
        rdbms.submit(SyntheticJob(f"Q{i}", cost, initial_done=done))

    multi = MultiQueryProgressIndicator()
    singles = {
        job.query_id: SingleQueryProgressIndicator(window_seconds=8.0)
        for job in rdbms.running
    }

    def dashboard(db: SimulatedRDBMS) -> None:
        snapshot = db.snapshot()
        estimate = multi.estimate(snapshot)
        print(f"\n=== t = {db.clock:6.1f}s   ({len(db.running)} running) ===")
        print(f"{'query':<6} {'progress':<24} {'single-est':>10} {'multi-est':>10}")
        for job in sorted(db.running, key=lambda j: j.query_id):
            qid = job.query_id
            total = job.completed_work + job.estimated_remaining_cost()
            pi = singles[qid]
            pi.observe(db.clock, job.completed_work)
            est = pi.estimate(db.clock, job.estimated_remaining_cost())
            single_txt = f"{est.remaining_seconds:8.1f}s" if est else "   (warm)"
            multi_txt = f"{estimate.for_query(qid):8.1f}s"
            print(
                f"{qid:<6} {bar(job.completed_work / total)} "
                f"{job.completed_work / total:4.0%} {single_txt:>10} {multi_txt:>10}"
            )

    rdbms.add_sampler(20.0, dashboard)
    dashboard(rdbms)
    rdbms.run_to_completion()

    print("\nAll queries finished at these times:")
    for qid, trace in sorted(rdbms.traces.queries.items()):
        print(f"  {qid}: t = {trace.finished_at:.1f}s")


if __name__ == "__main__":
    main()
