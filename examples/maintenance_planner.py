#!/usr/bin/env python3
"""Scheduled-maintenance planning with a multi-query PI (paper Section 3.3).

Maintenance is scheduled t seconds from now; new queries are already being
rejected (operation O1).  Which running queries should be aborted *now* so
the system drains in time with minimal lost work?

The script compares, on one workload:
  * the no-PI policy (let everything run, kill stragglers at the deadline),
  * the single-query-PI policy (abort largest remaining cost while anyone
    is predicted -- under constant load -- to miss the deadline),
  * the multi-query-PI greedy knapsack plan (Section 3.3), and
  * the theoretical limit (exact knapsack on true costs).

Run:  python examples/maintenance_planner.py [deadline_fraction]
"""

import random
import sys

from repro.experiments.maintenance import MaintenanceConfig, run_one
from repro.experiments.maintenance import (
    MULTI_PI,
    NO_PI,
    SINGLE_PI,
    THEORETICAL,
    sample_running_queries,
    t_finish_of,
)
from repro.wm.maintenance import LostWorkCase, plan_maintenance


def main() -> None:
    fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    config = MaintenanceConfig(seed=99)
    rng = random.Random(config.seed)
    queries = sample_running_queries(config, rng)
    t_finish = t_finish_of(queries, config.processing_rate)
    deadline = fraction * t_finish

    print(f"Workload: {len(queries)} running queries, "
          f"t_finish = {t_finish:.0f}s, deadline = {deadline:.0f}s "
          f"({fraction:.0%} of t_finish)\n")
    print(f"{'query':<6} {'total cost':>10} {'done':>8} {'remaining':>10}")
    for q in queries:
        print(f"{q.query_id:<6} {q.total_cost:>10.0f} "
              f"{q.completed_work:>8.0f} {q.remaining_cost:>10.0f}")

    plan = plan_maintenance(
        queries, deadline, config.processing_rate, LostWorkCase.TOTAL_COST
    )
    print(f"\nMulti-query-PI plan: abort {list(plan.aborts) or 'nothing'}")
    print(f"  projected drain time: {plan.projected_quiescent_time:.0f}s "
          f"(deadline {deadline:.0f}s)")
    print(f"  lost work: {plan.lost_work:.0f} U of {plan.total_work:.0f} U "
          f"({plan.unfinished_fraction:.0%})")

    print("\nRealised unfinished work UW/TW by policy (simulated):")
    for method in (NO_PI, SINGLE_PI, MULTI_PI, THEORETICAL):
        uw = run_one(queries, deadline, config, method)
        print(f"  {method:<18} {uw:6.1%}")


if __name__ == "__main__":
    main()
