#!/usr/bin/env python3
"""Victim selection for the speed-up problems (paper Sections 3.1-3.2).

A DBA wants a target query to finish sooner and is willing to block other
queries.  The naive approach blocks the heaviest resource consumer -- but
if that query is about to finish anyway, blocking it buys almost nothing.
The PI-driven algorithm weighs weight against remaining time.

The script builds a workload where the two choices differ, picks victims
with the Section 3.1 algorithm (h = 1 and h = 2) and the Section 3.2
all-queries variant, and verifies each prediction in the simulator.

Run:  python examples/victim_picker.py
"""

from repro.core.model import QuerySnapshot
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.multi_speedup import choose_victim_for_all
from repro.wm.speedup import choose_victim, choose_victims

WORKLOAD = {
    # query_id: (remaining cost U, priority weight)
    "target": (120.0, 1.0),
    "etl-heavy": (30.0, 8.0),     # heaviest consumer -- but nearly done
    "report-long": (500.0, 2.0),  # the real capacity hog over time
    "adhoc-1": (60.0, 1.0),
    "adhoc-2": (150.0, 1.0),
}


def simulate(blocked: tuple[str, ...], watch: str) -> float:
    rdbms = SimulatedRDBMS(processing_rate=10.0)
    for qid, (cost, weight) in WORKLOAD.items():
        rdbms.submit(SyntheticJob(qid, cost, weight=weight))
    for qid in blocked:
        rdbms.block(qid)
    rdbms.run_to_completion()
    return rdbms.traces[watch].finished_at


def main() -> None:
    queries = [
        QuerySnapshot(qid, cost, weight=weight)
        for qid, (cost, weight) in WORKLOAD.items()
    ]

    print("Section 3.1 -- speed up 'target' by blocking one query")
    choice = choose_victim(queries, "target", processing_rate=10.0)
    baseline = simulate((), "target")
    print(f"  baseline finish:            {baseline:6.1f}s")
    print(f"  block heaviest (etl-heavy): {simulate(('etl-heavy',), 'target'):6.1f}s")
    chosen = simulate(choice.victims, "target")
    print(f"  block chosen ({choice.victims[0]}): {chosen:6.1f}s "
          f"(predicted {choice.predicted_remaining:.1f}s)")

    print("\nSection 3.1 -- greedy h = 2 victims")
    choice2 = choose_victims(queries, "target", processing_rate=10.0, h=2)
    chosen2 = simulate(choice2.victims, "target")
    print(f"  victims: {choice2.victims}")
    print(f"  finish: {chosen2:6.1f}s (predicted {choice2.predicted_remaining:.1f}s)")

    print("\nSection 3.2 -- block one query to help everyone else")
    all_choice = choose_victim_for_all(queries, processing_rate=10.0)
    print(f"  victim: {all_choice.victim} "
          f"(total response-time gain {all_choice.improvement:.1f}s)")
    for qid, gain in sorted(all_choice.all_improvements.items()):
        print(f"    blocking {qid:<12} would gain {gain:7.1f}s in total")


if __name__ == "__main__":
    main()
