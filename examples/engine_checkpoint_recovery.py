#!/usr/bin/env python3
"""Work-preserving recovery: crash a real SQL execution, resume it.

The engine's operators (scans, sort, hash join, hash aggregate, ...) can
snapshot their internal state, so a :class:`QueryExecution` configured with
a ``checkpoint_interval`` periodically captures a consistent cut of the
whole plan.  When a fault kills the query mid-flight, the retry layer
replans the same SQL and *restores* the last checkpoint instead of
starting from zero -- the work done before the checkpoint is preserved,
and only the slice between the checkpoint and the crash is redone.

This script runs the paper's ``Q_1`` under a scripted crash at 50% of its
work, once without checkpoints and once with a 25-U cadence, and asserts:

  * both runs finish with *identical* result rows,
  * the checkpointed run preserves >= 80% of the crashed attempt's work,
  * the work ledger balances: gross work = useful work + wasted work.

Run:  python examples/engine_checkpoint_recovery.py
"""

import random

from repro.engine.database import Database
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, QueryCrash
from repro.faults.retry import RetryController, RetryPolicy
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.queries import engine_job, paper_query
from repro.workload.tpcr import TpcrConfig, add_part_table, build_lineitem

RATE = 10.0  # U/s
CADENCE = 25.0  # checkpoint every this many work units


def build_db() -> Database:
    """A small deterministic TPC-R slice with one part table."""
    tpcr = TpcrConfig(scale=1 / 4000, seed=7)
    rng = random.Random(7)
    db = Database(page_capacity=tpcr.page_capacity)
    build_lineitem(db, tpcr, rng)
    add_part_table(db, 1, 12, tpcr, rng)
    db.analyze()
    return db


def crash_run(db: Database, interval: float | None):
    """Run Q_1 under a crash-at-50% plan; return the final query record."""
    rdbms = SimulatedRDBMS(processing_rate=RATE)
    RetryController(rdbms, RetryPolicy(max_attempts=3, base_delay=1.0))
    FaultInjector(rdbms, FaultPlan.of(QueryCrash("Q1", at_fraction=0.5))).arm()
    rdbms.submit(engine_job(db, "Q1", 1, checkpoint_interval=interval))
    rdbms.run_to_completion(max_time=1000.0)
    return rdbms.record("Q1")


def main() -> None:
    db = build_db()
    print(f"query: {paper_query(1)}\n")

    plain = crash_run(db, interval=None)
    ckpt = crash_run(db, interval=CADENCE)

    for label, rec in [("no checkpoints", plain), (f"{CADENCE:g}-U cadence", ckpt)]:
        trace = rec.trace
        print(f"[{label}] {rec.status} after {rec.attempts} attempts: "
              f"useful {rec.job.completed_work:.1f} U, "
              f"preserved {trace.preserved_work:.1f} U, "
              f"wasted {trace.wasted_work:.1f} U")

    # Same answer either way.
    assert plain.status == ckpt.status == "finished"
    assert plain.job.execution.rows == ckpt.job.execution.rows

    # The crash landed mid-flight and the retry actually resumed.
    assert plain.attempts == ckpt.attempts == 2
    assert plain.trace.preserved_work == 0.0

    # Work-preservation headline: >= 80% of the crashed attempt survived.
    crashed = ckpt.trace.preserved_work + ckpt.trace.wasted_work
    ratio = ckpt.trace.preserved_work / crashed
    print(f"\npreserved {100 * ratio:.0f}% of the crashed attempt's work")
    assert ratio >= 0.8, ratio

    # Conservation: everything ever executed is either useful or wasted.
    for rec in (plain, ckpt):
        gross = rec.job.completed_work + rec.trace.wasted_work
        redone = rec.job.completed_work - rec.trace.preserved_work
        assert gross >= rec.job.completed_work
        assert redone >= 0
    print("all assertions passed")


if __name__ == "__main__":
    main()
