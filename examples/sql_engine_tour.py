#!/usr/bin/env python3
"""Tour of the from-scratch SQL engine and its steppable executor.

Builds the paper's TPC-R-style dataset, shows the optimizer's plan and cost
estimate for the paper's correlated-subquery query, then executes it in
small work budgets while the progress tracker refines the remaining cost --
the single-query machinery every PI builds on.

Run:  python examples/sql_engine_tour.py
"""

from repro.workload.queries import paper_query
from repro.workload.tpcr import TpcrConfig, generate


def main() -> None:
    print("Generating TPC-R-style data (scaled)...")
    dataset = generate(TpcrConfig(scale=1 / 2000, seed=5), part_sizes={1: 6})
    db = dataset.db
    for name, tuples, pages in dataset.table_summary():
        print(f"  {name:<10} {tuples:>8} tuples {pages:>6} pages")

    sql = paper_query(1)
    print(f"\nQuery:\n  {sql}\n")
    print("Plan (EXPLAIN):")
    print(db.explain(sql))

    execution = db.prepare(sql)
    print(f"\nOptimizer cost estimate: {execution.root.est_cost:.0f} U")

    print("\nStepping the executor 40 U at a time:")
    print(f"{'work done':>10} {'driver %':>9} {'refined total':>14} {'remaining':>10}")
    while not execution.finished:
        execution.step(40.0)
        progress = execution.progress
        frac = progress.driver_fraction() or 0.0
        print(
            f"{execution.work_done:>10.0f} {frac:>8.0%} "
            f"{progress.estimated_total_cost():>14.0f} "
            f"{progress.estimated_remaining_cost():>10.0f}"
        )

    print(f"\nFinished: {len(execution.rows)} parts selling 25% below retail")
    print(f"Actual total work: {execution.work_done:.0f} U "
          f"(optimizer estimated {execution.root.est_cost:.0f} U)")
    for row in execution.rows[:5]:
        print(f"  partkey={row[0]:<8} retailprice={row[1]:.2f}")
    if len(execution.rows) > 5:
        print(f"  ... and {len(execution.rows) - 5} more")


if __name__ == "__main__":
    main()
