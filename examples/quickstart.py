#!/usr/bin/env python3
"""Quickstart: a multi-query progress indicator in a dozen lines.

Three queries share a simulated RDBMS.  At t = 0 we ask both PIs how long
the big query will take; then we run the simulation and compare against
what actually happened -- the single-query PI assumes the current load
lasts forever, the multi-query PI knows the small queries will finish and
free up capacity.

Run:  python examples/quickstart.py
"""

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


def main() -> None:
    # An RDBMS processing 10 units of work per second (Assumption 1).
    rdbms = SimulatedRDBMS(processing_rate=10.0)

    # Three concurrent queries: costs in U's (pages of work).
    rdbms.submit(SyntheticJob("small-1", cost=100))
    rdbms.submit(SyntheticJob("small-2", cost=200))
    rdbms.submit(SyntheticJob("big", cost=900))

    # --- single-query PI: remaining cost / current speed -----------------
    snapshot = rdbms.snapshot()
    speed = rdbms.current_speeds()["big"]  # 10/3 U/s while sharing 3 ways
    single_estimate = snapshot.find("big").remaining_cost / speed

    # --- multi-query PI: models the other queries explicitly -------------
    pi = MultiQueryProgressIndicator()
    multi_estimate = pi.estimate(snapshot).for_query("big")

    # --- ground truth -----------------------------------------------------
    rdbms.run_to_completion()
    actual = rdbms.traces["big"].finished_at

    print(f"single-query PI estimate : {single_estimate:7.1f} s")
    print(f"multi-query  PI estimate : {multi_estimate:7.1f} s")
    print(f"actual completion        : {actual:7.1f} s")
    print()
    print(
        "The multi-query PI is exact here because the paper's Assumptions "
        "1-3 hold\nin the simulator; the single-query PI overestimates by "
        f"{single_estimate / actual:.1f}x."
    )


if __name__ == "__main__":
    main()
