# Convenience targets for the reproduction package.

.PHONY: install test bench bench-smoke bench-engine chaos scale shard overload coverage report observe examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick benchmark smoke: the cheapest figure bench plus the engine
# throughput bench, hard-capped at 5 minutes (coreutils timeout; the
# container has no pytest-timeout plugin).
bench-smoke:
	timeout 300 pytest benchmarks -q -k "fig1_ or engine_throughput" --benchmark-only

# Row-vs-batch engine throughput gate: times both execution modes,
# asserts batch >= 2x row on the gated queries (including the paper's
# correlated-subquery query, which the planner now decorrelates into a
# grouped LEFT join) with identical rows and work totals, checks the
# decorrelation pass actually fired on the paper query (plan shape, not
# just timing), and writes BENCH_engine.json.  Runs without
# --benchmark-only so the gate tests (plain assertions) execute.
bench-engine:
	timeout 300 pytest benchmarks/test_bench_engine_throughput.py -q

chaos:
	pytest -m chaos tests/

# Concurrency-scalability sweep (writes BENCH_scale.json).  Override the
# sizes for a quick run, e.g.:  make scale REPRO_SCALE_SIZES=100,500,1000
scale:
	REPRO_SCALE_SIZES=$(REPRO_SCALE_SIZES) pytest -m scale benchmarks/ --benchmark-only

# Sharded-cluster gate: chaos acceptance suite (crash -> failover ->
# byte-identical results) plus the refresh/recovery bench, which writes
# BENCH_shard.json.  Override the sweep for a quick run, e.g.:
#   make shard REPRO_SHARD_SIZES=2,4
shard:
	pytest -m chaos tests/dist/
	REPRO_SHARD_SIZES=$(REPRO_SHARD_SIZES) pytest -m shard benchmarks/ --benchmark-only

# Overload-protection gate: the seeded NodeCrash + ArrivalBurst storm
# acceptance suite, then the no-cliff bench (writes BENCH_overload.json).
# Override the load sweep for a quick run, e.g.:
#   make overload REPRO_OVERLOAD_LOADS=1,5
overload:
	pytest -m overload tests/
	REPRO_OVERLOAD_LOADS=$(REPRO_OVERLOAD_LOADS) pytest -m overload benchmarks/

# Line-coverage gate over the core PI algorithms (requires pytest-cov,
# installed via `pip install -e .[test]`; CI enforces this).
coverage:
	pytest tests/ --cov=repro.core --cov-report=term-missing --cov-fail-under=90

report:
	python -m repro report --out REPORT.md

# Observed seeded MCQ: accuracy summary + JSONL trace + metrics merge,
# then schema-check the trace (see docs/OBSERVABILITY.md).
observe:
	python -m repro report --observe --trace trace.jsonl --metrics-json BENCH_obs.json
	python -m repro report --validate-trace trace.jsonl

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: test bench examples
