# Convenience targets for the reproduction package.

.PHONY: install test bench bench-smoke chaos report examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Quick benchmark smoke: the cheapest figure bench plus the engine
# throughput bench, hard-capped at 5 minutes (coreutils timeout; the
# container has no pytest-timeout plugin).
bench-smoke:
	timeout 300 pytest benchmarks -q -k "fig1_ or engine_throughput" --benchmark-only

chaos:
	pytest -m chaos tests/

report:
	python -m repro report --out REPORT.md

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: test bench examples
