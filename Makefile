# Convenience targets for the reproduction package.

.PHONY: install test bench chaos report examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

chaos:
	pytest -m chaos tests/

report:
	python -m repro report --out REPORT.md

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: test bench examples
