"""Sections 3.1/3.2 (no paper figure): speed-up victim selection.

The paper motivates PI-driven victim choice with the observation that the
"heaviest resource consumer" heuristic can pick a victim that is about to
finish, wasting the intervention.  This bench constructs exactly that
scenario and quantifies the advantage of the Section 3.1/3.2 algorithms,
validating the chosen victims against the simulator.
"""

import random

import pytest

from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case
from repro.experiments.reporting import format_table
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.multi_speedup import choose_victim_for_all
from repro.wm.speedup import choose_victim, choose_victims


def _simulate_with_block(costs_weights, victim, target, rate=1.0):
    """Run the simulator with *victim* blocked; return target finish time."""
    db = SimulatedRDBMS(processing_rate=rate)
    for qid, (cost, weight) in costs_weights.items():
        db.submit(SyntheticJob(qid, cost, weight=weight))
    if victim is not None:
        db.block(victim)
    db.run_to_completion()
    return db.traces[target].finished_at


def test_single_query_speedup_beats_heaviest_consumer(once):
    # The heaviest consumer (high weight) is about to finish; a lighter but
    # long-running query is the better victim for the target.
    workload = {
        "target": (100.0, 1.0),
        "heavy_but_done": (8.0, 8.0),     # heaviest consumer, finishes soon
        "long_runner": (300.0, 2.0),
    }
    queries = [
        QuerySnapshot(q, c, weight=w) for q, (c, w) in workload.items()
    ]
    choice = once(choose_victim, queries, "target", 1.0)
    print()
    print(f"Section 3.1 -- chosen victim: {choice.victims[0]} "
          f"(predicted benefit {choice.benefit:.1f}s)")

    assert choice.victims == ("long_runner",)

    # Validate against the simulator: blocking the chosen victim helps the
    # target more than blocking the heaviest consumer.
    t_chosen = _simulate_with_block(workload, "long_runner", "target")
    t_heavy = _simulate_with_block(workload, "heavy_but_done", "target")
    t_none = _simulate_with_block(workload, None, "target")
    print(
        format_table(
            ["action", "target finish (s)"],
            [
                ("no blocking", t_none),
                ("block heaviest consumer", t_heavy),
                ("block chosen victim", t_chosen),
            ],
        )
    )
    assert t_chosen < t_heavy < t_none
    # The predicted benefit matches the simulated saving.
    assert t_none - t_chosen == pytest.approx(choice.benefit, rel=1e-6)


def test_multi_victim_greedy_matches_simulation(once):
    rng = random.Random(5)
    queries = [
        QuerySnapshot(f"q{i}", rng.uniform(10, 300),
                      weight=rng.choice([1.0, 2.0, 4.0]))
        for i in range(8)
    ]
    target = "q0"
    choice = once(choose_victims, queries, target, 1.0, 3)
    workload = {q.query_id: (q.remaining_cost, q.weight) for q in queries}
    db = SimulatedRDBMS(processing_rate=1.0)
    for qid, (c, w) in workload.items():
        db.submit(SyntheticJob(qid, c, weight=w))
    for victim in choice.victims:
        db.block(victim)
    db.run_to_completion()
    simulated = db.traces[target].finished_at
    print()
    print(f"Greedy h=3 victims: {choice.victims}; predicted "
          f"{choice.predicted_remaining:.1f}s, simulated {simulated:.1f}s")
    assert simulated == pytest.approx(choice.predicted_remaining, rel=1e-6)


def test_multiple_query_speedup_improvement_is_real(once):
    rng = random.Random(9)
    queries = [
        QuerySnapshot(f"q{i}", rng.uniform(10, 200)) for i in range(6)
    ]
    choice = once(choose_victim_for_all, queries, 1.0)

    base = standard_case(queries, 1.0).remaining_times
    rest = [q for q in queries if q.query_id != choice.victim]
    after = standard_case(rest, 1.0).remaining_times
    realized = sum(base[q.query_id] - after[q.query_id] for q in rest)
    print()
    print(f"Section 3.2 -- victim {choice.victim}, total response-time "
          f"improvement {choice.improvement:.1f}s (realized {realized:.1f}s)")
    assert realized == pytest.approx(choice.improvement, rel=1e-6)
    # No other victim does better (exhaustive check).
    for other in queries:
        rest_o = [q for q in queries if q.query_id != other.query_id]
        after_o = standard_case(rest_o, 1.0).remaining_times
        gain = sum(base[q.query_id] - after_o[q.query_id] for q in rest_o)
        assert gain <= choice.improvement + 1e-9
