"""Paper Figure 9: wrong lambda', averaged over all ten initial queries.

Same sweep as Figure 8 with the Figure 7 aggregation.  The paper's summary
claim -- the multi-query estimate beats the single-query one unless lambda'
is *several times* larger than the truth -- is asserted on the average.
"""

from repro.experiments.reporting import format_table
from repro.experiments.scq import SCQConfig, run_lambda_sensitivity

LAMBDA_PRIMES = (0.0, 0.01, 0.03, 0.05, 0.08, 0.12, 0.2)


def test_fig9_wrong_lambda_average(once):
    config = SCQConfig(runs=12, seed=45)
    sweep = once(run_lambda_sensitivity, config, 0.03, LAMBDA_PRIMES)
    print()
    print("Figure 9 -- average relative error, true lambda = 0.03:")
    print(
        format_table(
            ["lambda'", "single-query", "multi-query"],
            [(p.lam, p.single_avg, p.multi_avg) for p in sweep.points],
        )
    )

    by_lp = {p.lam: p for p in sweep.points}

    # Multi beats single for lambda' up to ~3x the truth (paper: ~5x).
    for lp in (0.0, 0.01, 0.03, 0.05, 0.08):
        assert by_lp[lp].multi_avg < by_lp[lp].single_avg

    # A grossly wrong forecast eventually loses.
    assert by_lp[0.2].multi_avg > by_lp[0.03].multi_avg

    # Error is monotone in the deviation above the truth.
    assert (
        by_lp[0.03].multi_avg
        <= by_lp[0.08].multi_avg
        <= by_lp[0.2].multi_avg
    )
