"""Sharded-cluster bench: PI refresh cost and failover recovery vs N.

Sweeps the shard count, and for each cluster size measures

* the wall-clock cost of a full global-PI refresh (``cluster.estimates()``
  across all in-flight distributed queries, per-shard contributions and
  all) while the cluster is mid-execution;
* the virtual-time cost of a node crash: how much later the workload
  finishes than the no-fault baseline, and what fraction of the dead
  node's checkpointed work the failover preserved.

Persists the sweep to ``BENCH_shard.json`` (section ``"shard"``) and
asserts the robustness headlines: results stay byte-identical to
single-node execution through the crash, most checkpointed work
survives, and the refresh cost stays far below the simulated epoch.

``REPRO_SHARD_SIZES`` (comma-separated shard counts) overrides the sweep
for quick CI runs.  Run with ``pytest -m shard benchmarks/``.
"""

import os
import time
from pathlib import Path

import pytest

from repro.dist import ShardedCluster, load_tpcr
from repro.experiments.reporting import format_table
from repro.faults.plan import FaultPlan, NodeCrash
from repro.dist import ClusterFaultInjector
from repro.sim.scale import merge_bench_json
from repro.workload.tpcr import TpcrConfig, generate

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_shard.json"

SMALL = TpcrConfig(scale=1 / 2000, seed=0)  # 12,000 lineitem rows
QUERIES = {
    "scan": "SELECT * FROM lineitem WHERE partkey > 0",
    "group": "SELECT partkey, SUM(quantity) FROM lineitem "
             "GROUP BY partkey ORDER BY partkey",
}
DEFAULT_SIZES = (2, 4, 8)
REFRESH_ROUNDS = 200


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SHARD_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def make_cluster(n_shards: int) -> ShardedCluster:
    cluster = ShardedCluster(
        n_shards=n_shards,
        replication=2,
        processing_rate=10.0,
        checkpoint_interval=0.25,
    )
    load_tpcr(cluster, config=SMALL)
    for qid, sql in QUERIES.items():
        cluster.submit(qid, sql)
    return cluster


def measure(n_shards: int) -> dict:
    # --- Global-PI refresh cost, mid-flight -------------------------
    cluster = make_cluster(n_shards)
    cluster.run_until(1.0)  # everything running, nothing finished
    start = time.perf_counter()
    for _ in range(REFRESH_ROUNDS):
        estimates = cluster.estimates()
    refresh_seconds = (time.perf_counter() - start) / REFRESH_ROUNDS
    n_contributions = sum(len(e.shards) for e in estimates.values())
    cluster.run_to_completion()
    baseline_finish = max(
        dq.finished_at for dq in cluster.queries().values()
    )

    # --- Failover recovery: crash one node mid-flight ---------------
    crashed = make_cluster(n_shards)
    ClusterFaultInjector(
        crashed, FaultPlan.of(NodeCrash("node1", at=1.5))
    ).arm()
    crashed.run_to_completion(max_time=10_000.0)
    crash_finish = max(
        dq.finished_at for dq in crashed.queries().values()
    )
    total = crashed.work_preserved + crashed.work_lost
    single = generate(SMALL).db
    identical = all(
        crashed.result_rows(qid) == single.query(sql)
        for qid, sql in QUERIES.items()
    )
    return {
        "n_shards": n_shards,
        "refresh_seconds": refresh_seconds,
        "n_contributions": n_contributions,
        "baseline_finish": baseline_finish,
        "crash_finish": crash_finish,
        "recovery_penalty": crash_finish - baseline_finish,
        "failovers": crashed.failovers,
        "work_preserved_fraction": (
            crashed.work_preserved / total if total > 0 else 1.0
        ),
        "identical": identical,
    }


@pytest.mark.shard
def test_shard_refresh_and_failover(once):
    sizes = _sizes()

    def sweep():
        return [measure(n) for n in sizes]

    points = once(sweep)
    merge_bench_json(
        BENCH_JSON, "shard",
        {"sizes": list(sizes), "refresh_rounds": REFRESH_ROUNDS,
         "points": points},
    )

    print()
    print("Global-PI refresh cost and crash recovery vs shard count:")
    print(
        format_table(
            ["shards", "refresh (us)", "contribs", "finish (s)",
             "crash finish (s)", "failovers", "preserved"],
            [
                (
                    p["n_shards"],
                    f"{p['refresh_seconds'] * 1e6:.1f}",
                    p["n_contributions"],
                    f"{p['baseline_finish']:.1f}",
                    f"{p['crash_finish']:.1f}",
                    p["failovers"],
                    f"{p['work_preserved_fraction']:.0%}",
                )
                for p in points
            ],
        )
    )

    for p in points:
        n = p["n_shards"]
        # Correctness through the crash is non-negotiable.
        assert p["identical"], f"n={n}: results diverged after failover"
        assert p["failovers"] >= 1, f"n={n}: crash caused no failover"
        # Checkpointing must preserve the bulk of the dead node's work.
        assert p["work_preserved_fraction"] >= 0.5, (
            f"n={n}: only {p['work_preserved_fraction']:.0%} preserved"
        )
        # A full global refresh must be far cheaper than the 0.25 s
        # epoch it runs inside -- PI overhead must not distort the sim.
        assert p["refresh_seconds"] < 0.025, (
            f"n={n}: refresh costs {p['refresh_seconds'] * 1e3:.1f} ms"
        )
        # Recovery costs time, but bounded: the cluster re-runs at most
        # the lost tail, not the whole workload.
        assert p["crash_finish"] <= 3.0 * p["baseline_finish"] + 5.0, (
            f"n={n}: crash recovery blew the finish time out to "
            f"{p['crash_finish']:.1f}s vs {p['baseline_finish']:.1f}s"
        )

    # Validate the persisted report round-trips.
    import json

    data = json.loads(BENCH_JSON.read_text())
    assert data["shard"]["sizes"] == list(sizes)
    assert len(data["shard"]["points"]) == len(sizes)
