"""Paper Figure 4: the focus query's execution speed over time (MCQ).

As concurrent queries finish, the focus query's speed rises steadily --
"by almost a factor of five" in the paper's run; the exact factor depends
on the Zipf draw, so the bench asserts a several-fold monotone increase
ending at the full processing rate.
"""

import pytest

from repro.experiments.mcq import MCQConfig, run_mcq
from repro.experiments.reporting import format_series, sparkline


def test_fig4_mcq_execution_speed(once):
    config = MCQConfig(seed=3)
    result = once(run_mcq, config)
    print()
    print(f"Figure 4 -- execution speed of {result.focus_query} (U/s)")
    print(format_series("speed", result.speed, precision=2))
    print("shape:", sparkline([v for _, v in result.speed]))

    speeds = [v for _, v in result.speed]
    # Monotone non-decreasing under fair sharing with departures only.
    assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))
    # Several-fold speed-up across the run (paper: ~5x).
    assert result.speedup_factor() >= 2.0
    # The last survivor ends up with the whole machine.
    assert speeds[-1] == pytest.approx(config.processing_rate)
    # It started with roughly a 1/n share.
    assert speeds[0] <= config.processing_rate / 2
