"""Paper Figure 10: adaptive correction of a wrong lambda' over time.

One SCQ run (true lambda = 0.03); the multi-query PI starts believing
lambda' in {0.04, 0.05} with an adaptive forecaster attached.  As real
arrivals are observed the blended rate converges and the remaining-time
estimate closes in on the truth -- "the closer to query completion time,
the more precise the multi-query estimate is".
"""

from repro.experiments.reporting import format_series
from repro.experiments.scq import SCQConfig, run_adaptive_trace


def test_fig10_adaptive_lambda_correction(once):
    trace = once(
        run_adaptive_trace,
        SCQConfig(runs=1, seed=42),
        0.03,
        (0.04, 0.05),
    )
    print()
    print(
        f"Figure 10 -- multi-query estimates for {trace.focus_query} "
        f"(finishes at t={trace.finish_time:.1f}s), true lambda = 0.03:"
    )
    for lp, series in trace.series.items():
        print(format_series(f"lambda' = {lp}", series))

    for lp in (0.04, 0.05):
        # The final pre-completion estimate is accurate...
        assert trace.final_error(lp) < 0.25
        # ...and no worse than where the wrong prior started us.
        assert trace.final_error(lp) <= trace.initial_error(lp) + 0.05
