"""Prototype-fidelity maintenance: Figure 11's comparison on real SQL.

The synthetic Figure 11 bench grants Assumption 2 (exact remaining costs).
Here the three policies decide from the *executors' refined estimates*
(~10-25% error) while lost work is accounted against ground truth learned
from oracle runs.

Shape claims: averaged over workloads, the multi-query-PI method loses the
least work among the executable methods for deadlines below t_finish --
the paper's headline -- while estimate error now produces the "occasionally
worse" cases the paper acknowledges (visible at t = t_finish, where any
abort is unnecessary and the no-PI method trivially wins).
"""

from repro.core.metrics import mean
from repro.experiments.engine_mode import EngineMCQConfig, run_engine_maintenance
from repro.experiments.reporting import format_table

FRACTIONS = (0.4, 0.6, 0.8, 1.0)
SEEDS = range(11, 17)


def test_engine_mode_maintenance(once):
    def run_all():
        table = {}
        for frac in FRACTIONS:
            agg: dict[str, list[float]] = {}
            for seed in SEEDS:
                result = run_engine_maintenance(
                    EngineMCQConfig(seed=seed), deadline_fraction=frac
                )
                for method, uw in result.fractions.items():
                    agg.setdefault(method, []).append(uw)
            table[frac] = {m: mean(v) for m, v in agg.items()}
        return table

    table = once(run_all)
    print()
    print("Engine-mode maintenance -- mean UW/TW (estimates imprecise):")
    methods = list(next(iter(table.values())).keys())
    print(
        format_table(
            ["t/t_finish"] + methods,
            [[frac] + [table[frac][m] for m in methods] for frac in FRACTIONS],
        )
    )

    for frac in FRACTIONS:
        row = table[frac]
        # Multi-query PI beats the single-query PI at every deadline.
        assert row["multi-query PI"] < row["single-query PI"]
        if frac < 1.0:
            # ...and beats no-PI whenever aborting is actually useful.
            assert row["multi-query PI"] < row["no PI"]
    # At t = t_finish the no-PI method is trivially optimal; the estimate
    # error costs the PI methods something -- the paper's "occasionally
    # performs worse" regime.  It must stay bounded.
    assert table[1.0]["multi-query PI"] < 0.6
