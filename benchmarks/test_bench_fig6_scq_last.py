"""Paper Figure 6: SCQ relative error vs arrival rate, last-finishing query.

Ten initial queries plus a Poisson(lambda) stream (Zipf 2.2 sizes); the
multi-query PI knows the exact lambda and average cost.  Shape claims:
multi beats single in the stable regime (lambda below the ~0.07 saturation
point), single's error *decreases* with lambda (its constant-load
assumption becomes truer), multi's error *increases*, and past saturation
both are large and comparable.
"""

from repro.experiments.reporting import format_table
from repro.experiments.scq import SCQConfig, run_scq_sweep

LAMBDAS = (0.0, 0.02, 0.04, 0.06, 0.1, 0.15, 0.2)


def test_fig6_scq_relative_error_last_finishing(once):
    config = SCQConfig(runs=12, seed=42)
    sweep = once(run_scq_sweep, config, LAMBDAS)
    print()
    print("Figure 6 -- relative error of the last-finishing query's estimate:")
    print(
        format_table(
            ["lambda", "single-query", "multi-query"],
            [(p.lam, p.single_last, p.multi_last) for p in sweep.points],
        )
    )

    by_lam = {p.lam: p for p in sweep.points}

    # Stable regime: multi wins, by a lot at low lambda.
    for lam in (0.0, 0.02, 0.04, 0.06):
        assert by_lam[lam].multi_last < by_lam[lam].single_last
    assert by_lam[0.0].multi_last < 0.2 * by_lam[0.0].single_last

    # Single-query error decreases as lambda approaches saturation.
    singles = [by_lam[lam].single_last for lam in (0.0, 0.02, 0.04, 0.06)]
    assert singles == sorted(singles, reverse=True)

    # Multi-query error grows with lambda.
    assert by_lam[0.06].multi_last > by_lam[0.0].multi_last

    # Past saturation both estimators are in the same (large-error) regime.
    for lam in (0.15, 0.2):
        ratio = by_lam[lam].multi_last / max(by_lam[lam].single_last, 1e-9)
        assert 0.2 < ratio < 5.0
