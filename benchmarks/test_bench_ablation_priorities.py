"""Extension bench: mixed-priority workloads (untestable in the paper).

The paper's prototype could not assign priorities (PostgreSQL 7.3.4 had
none), so its experiments are all equal-priority.  The algorithms are
priority-aware via Assumption 3; this bench evaluates them under weighted
fair sharing with increasingly dispersed priority mixes.

Shape claims: the multi-query PI stays exact for every mix (it models the
weights); the single-query PI's error for *low-priority* queries grows with
the spread -- a low-priority query's current speed says ever less about its
future as heavier queries come and go.
"""

from repro.experiments.priorities import PriorityMCQConfig, sweep_priority_spread
from repro.experiments.reporting import format_table


def test_priority_spread_ablation(once):
    sweep = once(
        sweep_priority_spread,
        PriorityMCQConfig(runs=10, seed=17),
        ((0,), (0, 1), (0, 2), (0, 3)),
    )
    print()
    print("Mixed-priority ablation (mean relative error at time 0):")
    print(
        format_table(
            [
                "priorities",
                "single (all)",
                "multi (all)",
                "single (low prio)",
                "multi (low prio)",
            ],
            [
                (label, e.single_avg, e.multi_avg,
                 e.single_low_priority, e.multi_low_priority)
                for label, e in sweep
            ],
        )
    )

    by_label = {label: e for label, e in sweep}

    # The multi-query PI is exact under weighted sharing, any mix.
    for label, e in sweep:
        assert e.multi_avg < 1e-6, f"multi-query PI inexact for mix {label}"

    # The single-query PI's low-priority error grows with weight spread.
    assert (
        by_label["0/3"].single_low_priority
        > by_label["0/1"].single_low_priority
        > 0
    )
    # And the multi-query PI wins everywhere.
    for label, e in sweep:
        assert e.multi_avg < e.single_avg
