"""Paper Figure 7: SCQ average relative error vs arrival rate (all ten).

Same sweep as Figure 6, averaged over the ten initial queries.  Additional
paper claim checked here: the last-finishing query's error dominates the
average (it suffers the largest and most random influence from arrivals).
"""

from repro.experiments.reporting import format_table
from repro.experiments.scq import SCQConfig, run_scq_sweep

LAMBDAS = (0.0, 0.02, 0.04, 0.06, 0.1, 0.15, 0.2)


def test_fig7_scq_average_relative_error(once):
    config = SCQConfig(runs=12, seed=43)
    sweep = once(run_scq_sweep, config, LAMBDAS)
    print()
    print("Figure 7 -- average relative error over all ten initial queries:")
    print(
        format_table(
            ["lambda", "single-query", "multi-query"],
            [(p.lam, p.single_avg, p.multi_avg) for p in sweep.points],
        )
    )

    by_lam = {p.lam: p for p in sweep.points}

    # Stable regime: multi-query wins on average too.
    for lam in (0.0, 0.02, 0.04, 0.06):
        assert by_lam[lam].multi_avg < by_lam[lam].single_avg

    # The average error is below the last-finishing query's error
    # (paper: the last finisher gets the largest, most random influence).
    for p in sweep.points:
        assert p.single_avg <= p.single_last + 1e-9
        assert p.multi_avg <= p.multi_last + 1e-9

    # Stable-case multi error stays small in absolute terms.
    assert by_lam[0.02].multi_avg < 0.2
