"""Combined §2.3 + §2.4 ablation: admission queue *and* arrival stream.

The paper evaluates queue visibility (NAQ, Fig 5) and future-arrival
forecasting (SCQ, Figs 6-9) separately.  Real systems have both at once:
an MPL-limited RDBMS with a Poisson arrival stream, where arrivals stack up
in the admission queue.  The projection handles the combination natively;
this bench measures how much each source of visibility contributes.

Estimators compared (time-0 relative error for the initially-running
queries, averaged over runs):

* single-query PI,
* multi-query, queue-blind, no forecast,
* multi-query, queue-aware, no forecast,
* multi-query, queue-aware + exact forecast.

Shape claims: each added source of multi-query visibility reduces the
error and the full estimator wins.  A notable interaction the separate
experiments cannot show: under an MPL with a backlog, the *queue-blind*
multi-query estimator is worse than the single-query PI -- it predicts
speed-ups that never materialise because the queue instantly refills freed
slots, while "the load stays constant" is approximately true.  Queue
visibility is what makes multi-query modelling pay off in admission-
controlled systems.
"""

import random

from repro.core.forecast import WorkloadForecast
from repro.core.metrics import mean, relative_error
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.experiments.reporting import format_table
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.zipf import ZipfSampler

RUNS = 12
MPL = 4
LAMBDA = 0.04
HORIZON = 400.0
RATE = 1.0
COST_PER_SIZE = 3.5
SEED = 23


def _one_run(seed):
    rng = random.Random(seed)
    sizes = ZipfSampler.over_range(2.2, 100, rng)
    rdbms = SimulatedRDBMS(processing_rate=RATE, multiprogramming_limit=MPL)
    initial = []
    # MPL running queries plus two already queued.
    for i in range(MPL + 2):
        cost = sizes.sample() * COST_PER_SIZE
        done = rng.uniform(0, 0.9) * cost if i < MPL else 0.0
        job = SyntheticJob(f"Q{i + 1}", cost, initial_done=done)
        initial.append(job)
        rdbms.submit(job)
    schedule = ArrivalSchedule()
    schedule.add_poisson(
        LAMBDA, HORIZON,
        lambda k: SyntheticJob(f"A{k}", sizes.sample() * COST_PER_SIZE),
        seed=rng,
    )
    rdbms.schedule(schedule)

    snapshot = rdbms.snapshot()
    speeds = rdbms.current_speeds()
    c_bar = sizes.mean() * COST_PER_SIZE
    forecast = WorkloadForecast(arrival_rate=LAMBDA, average_cost=c_bar)

    estimators = {
        "multi (blind)": MultiQueryProgressIndicator(consider_queue=False),
        "multi (+queue)": MultiQueryProgressIndicator(consider_queue=True),
        "multi (+queue+forecast)": MultiQueryProgressIndicator(
            consider_queue=True, forecast=forecast
        ),
    }
    estimates = {name: pi.estimate(snapshot) for name, pi in estimators.items()}

    rdbms.run_to_completion(max_time=1e7)

    errors: dict[str, list[float]] = {name: [] for name in estimators}
    errors["single-query"] = []
    for job in initial[:MPL]:  # running queries have a single-query estimate
        actual = rdbms.traces[job.query_id].finished_at
        single = snapshot.find(job.query_id).remaining_cost / speeds[job.query_id]
        errors["single-query"].append(relative_error(single, actual))
        for name, est in estimates.items():
            errors[name].append(
                relative_error(est.for_query(job.query_id), actual)
            )
    return errors


def test_queue_plus_forecast_visibility(once):
    def run_all():
        total: dict[str, list[float]] = {}
        for r in range(RUNS):
            for name, errs in _one_run(SEED + r).items():
                total.setdefault(name, []).extend(errs)
        return {name: mean(v) for name, v in total.items()}

    result = once(run_all)
    print()
    print("Combined queue + forecast visibility (mean relative error):")
    order = [
        "single-query",
        "multi (blind)",
        "multi (+queue)",
        "multi (+queue+forecast)",
    ]
    print(format_table(["estimator", "error"], [(n, result[n]) for n in order]))

    # Each visibility source helps; the full estimator wins.
    assert result["multi (+queue+forecast)"] < result["multi (+queue)"]
    assert result["multi (+queue)"] < result["multi (blind)"]
    assert result["multi (+queue+forecast)"] < result["single-query"]
