"""Overhead gate for the observability layer (docs/OBSERVABILITY.md).

Instrumentation must be free when disabled: every hot-path hook compiles
down to one ``self._obs is not None`` identity check.  This bench measures
that claim two ways and fails if the disabled path costs more than 5%:

* **refresh path** -- ``rdbms.remaining_times()`` (instrumented, obs
  disabled) vs a replica of the pre-instrumentation refresh (same
  ``shared_schedule()`` dispatch, no obs guards) at n = 2,000 live
  queries, best-of-k;
* **full run** -- an identical simulated workload driven to completion
  with observability disabled vs enabled-with-memory-sink, reported for
  context (the enabled path is allowed to cost more; only the disabled
  path is gated).

Run with ``pytest -m scale benchmarks/test_bench_obs_overhead.py``.
"""

import time

import pytest

from repro.obs import observed
from repro.sim.rdbms import SimulatedRDBMS, make_synthetic_workload

#: Disabled instrumentation may cost at most this fraction over untraced.
OVERHEAD_GATE = 0.05

N_QUERIES = 2000
ROUNDS = 200
BEST_OF = 5


def _loaded_rdbms(n=N_QUERIES):
    rdbms = SimulatedRDBMS(processing_rate=50.0)
    jobs = make_synthetic_workload(
        [10.0 + (i % 7) for i in range(n)],
        priorities=[i % 3 for i in range(n)],
    )
    for job in jobs:
        rdbms.submit(job)
    rdbms.shared_schedule()  # build once so timing sees steady state
    return rdbms


def _best_of(fn, k=BEST_OF):
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _min_pair_ratio(fn_a, fn_b, k=BEST_OF):
    """Minimum a/b time ratio over k back-to-back pairs.

    Scheduler noise and CPU frequency drift only ever *inflate* a single
    measurement, so the smallest observed ratio is the tightest available
    estimate of the intrinsic cost ratio: a genuine overhead above the
    gate would show up in every pair.
    """
    best_ratio = float("inf")
    best_a = best_b = None
    for _ in range(k):
        t0 = time.perf_counter()
        fn_a()
        a = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn_b()
        b = time.perf_counter() - t0
        if a / b < best_ratio:
            best_ratio, best_a, best_b = a / b, a, b
    return best_ratio, best_a, best_b


@pytest.mark.scale
def test_disabled_refresh_overhead_under_gate():
    rdbms = _loaded_rdbms()
    assert rdbms.obs is None
    sched = rdbms.shared_schedule()
    assert sched is not None

    def refresh_instrumented():
        for _ in range(ROUNDS):
            rdbms.remaining_times()

    def refresh_untraced():
        # The refresh path exactly as it was before instrumentation:
        # schedule dispatch included, obs guards absent.
        for _ in range(ROUNDS):
            live = rdbms.shared_schedule()
            if live is not None:
                live.remaining_times()

    # Warm both paths before timing.
    refresh_instrumented()
    refresh_untraced()
    ratio, instrumented, untraced = _min_pair_ratio(
        refresh_instrumented, refresh_untraced, k=9
    )
    overhead = ratio - 1.0
    print()
    print(f"refresh x{ROUNDS} at n={N_QUERIES}: "
          f"instrumented(disabled)={instrumented * 1e3:.2f}ms "
          f"untraced={untraced * 1e3:.2f}ms "
          f"overhead={overhead * 100:+.2f}%")
    assert overhead <= OVERHEAD_GATE, (
        f"disabled instrumentation overhead {overhead:.2%} exceeds "
        f"{OVERHEAD_GATE:.0%} gate"
    )


@pytest.mark.scale
def test_full_run_disabled_vs_enabled_reported():
    def drive():
        rdbms = _loaded_rdbms(n=300)
        t = 0.0
        while rdbms.running or rdbms.queued:
            t += 1.0
            rdbms.run_until(t)
            rdbms.remaining_times()

    disabled = _best_of(lambda: drive(), k=3)
    def drive_enabled():
        with observed():
            drive()
    enabled = _best_of(drive_enabled, k=3)
    print()
    print(f"full run n=300: disabled={disabled * 1e3:.1f}ms "
          f"enabled={enabled * 1e3:.1f}ms "
          f"(tracing cost x{enabled / disabled:.2f})")
    # Sanity only: enabled tracing must stay within an order of magnitude.
    assert enabled < disabled * 10
