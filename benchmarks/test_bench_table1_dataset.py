"""Paper Table 1: the test data set (scaled reproduction).

Regenerates the lineitem / part_i tables and checks the structural ratios
the experiments rely on: part tables hold ``10 * N_i`` distinct-key tuples
and each part tuple matches ~30 lineitem tuples.
"""

from repro.experiments.tables import build_table1
from repro.workload.tpcr import TpcrConfig


def test_table1_dataset(once):
    result = once(build_table1, TpcrConfig(scale=1 / 2000, seed=1), {1: 5, 2: 2, 3: 3})
    print()
    print("Table 1 (scale = 1/2000 of the paper's 24M-row lineitem):")
    print(result.render())

    rows = {r.table: r for r in result.rows}
    assert rows["lineitem"].tuples == 12_000
    assert rows["part_1"].tuples == 50  # 10 * N_1
    assert rows["part_2"].tuples == 20
    assert rows["part_3"].tuples == 30

    # ~30 lineitem matches per part tuple (paper Section 5.1).
    db = result.dataset.db
    matches = db.query(
        "SELECT count(*) FROM part_1 p JOIN lineitem l ON l.partkey = p.partkey"
    )[0][0]
    assert abs(matches / rows["part_1"].tuples - 30) < 1

    # The index on lineitem.partkey exists, as in the paper.
    assert db.catalog.table("lineitem").index_on("partkey") is not None
