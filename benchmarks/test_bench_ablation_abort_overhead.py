"""Future-work extension bench: maintenance with non-negligible abort cost.

The paper assumes abort overhead is negligible and flags the general case
as future work (Section 3.3).  This bench sweeps a rollback overhead
proportional to each aborted query's completed work and compares:

* the overhead-aware greedy (``plan_with_overhead``),
* the paper's overhead-blind greedy, which pays rollback costs it did not
  plan for, and
* the exact overhead-aware optimum.

Shape claims: (i) at zero overhead all three coincide with Section 3.3;
(ii) as overhead grows, the blind planner increasingly misses deadlines it
believes it meets, while the aware planner stays feasible whenever the
blind one is; (iii) the aware plan's lost work stays close to the optimum.
"""

import random

from repro.core.metrics import mean
from repro.experiments.maintenance import (
    MaintenanceConfig,
    sample_running_queries,
    t_finish_of,
)
from repro.experiments.reporting import format_table
from repro.wm.overhead import (
    exact_plan_with_overhead,
    plan_ignoring_overhead,
    plan_with_overhead,
    proportional_overhead,
)

OVERHEAD_FRACTIONS = (0.0, 0.25, 0.5, 1.0)
DEADLINE_FRACTION = 0.5
RUNS = 10


def test_abort_overhead_ablation(once):
    config = MaintenanceConfig(seed=31)

    def run_all():
        rows = []
        for frac in OVERHEAD_FRACTIONS:
            overhead = proportional_overhead(frac)
            aware_uw, blind_uw, exact_uw = [], [], []
            blind_missed = 0
            for r in range(RUNS):
                rng = random.Random(config.seed + r)
                queries = sample_running_queries(config, rng)
                deadline = DEADLINE_FRACTION * t_finish_of(queries, 1.0)
                aware = plan_with_overhead(queries, deadline, 1.0, overhead)
                blind = plan_ignoring_overhead(queries, deadline, 1.0, overhead)
                exact = exact_plan_with_overhead(queries, deadline, 1.0, overhead)
                aware_uw.append(aware.unfinished_fraction)
                blind_uw.append(blind.unfinished_fraction)
                exact_uw.append(exact.unfinished_fraction)
                if not blind.feasible:
                    blind_missed += 1
                # Invariant: aware is feasible whenever blind is.
                assert aware.feasible or not blind.feasible
            rows.append(
                (
                    frac,
                    mean(aware_uw),
                    mean(blind_uw),
                    mean(exact_uw),
                    f"{blind_missed}/{RUNS}",
                )
            )
        return rows

    rows = once(run_all)
    print()
    print(
        "Abort-overhead ablation (deadline = 0.5 t_finish; overhead = "
        "fraction x completed work):"
    )
    print(
        format_table(
            [
                "overhead frac",
                "aware UW/TW",
                "blind UW/TW",
                "exact UW/TW",
                "blind missed deadline",
            ],
            rows,
        )
    )

    by_frac = {r[0]: r for r in rows}
    # Zero overhead: aware == blind == the Section 3.3 greedy.
    assert by_frac[0.0][1] == by_frac[0.0][2]
    assert by_frac[0.0][4] == f"0/{RUNS}"
    # High overhead: the blind planner misses deadlines.
    assert by_frac[1.0][4] != f"0/{RUNS}"
    # The aware plan tracks the exact optimum.
    for frac in OVERHEAD_FRACTIONS:
        assert by_frac[frac][1] <= by_frac[frac][3] + 0.15
