"""Prototype-fidelity check: Figure 3's claim with real SQL executions.

Runs the paper's actual query workload (``Q_i`` over Zipf-sized part
tables, correlated index-probe subqueries on lineitem) through the
from-scratch engine, timeshared by the simulator.  Remaining costs are the
executors' refined estimates -- imperfect, like the PostgreSQL prototype's.

Asserted shape: the multi-query PI's estimates for the large query beat the
single-query PI's by a wide margin even with estimation noise, and the
optimizer's initial costs are imperfect-but-sane (within ~2x of actual).
"""

from repro.experiments.engine_mode import EngineMCQConfig, run_engine_mcq
from repro.experiments.harness import MULTI_QUERY, SINGLE_QUERY
from repro.experiments.reporting import format_series, format_table


def test_engine_mode_mcq(once):
    result = once(run_engine_mcq, EngineMCQConfig())
    print()
    print(
        f"Engine-mode MCQ -- focus {result.focus_query}, finishes at "
        f"t={result.finish_time:.1f}s"
    )
    print(format_series("single-query", result.estimates[SINGLE_QUERY]))
    print(format_series("multi-query", result.estimates[MULTI_QUERY]))
    print(
        format_table(
            ["query", "optimizer est (U)", "actual (U)"],
            [
                (qid, result.initial_costs[qid], result.final_works[qid])
                for qid in sorted(result.initial_costs)
            ],
        )
    )

    single = result.mean_relative_error(SINGLE_QUERY)
    multi = result.mean_relative_error(MULTI_QUERY)
    print(f"mean relative error: single={single:.2f} multi={multi:.2f}")

    # The paper's headline survives realistic cost estimation.
    assert multi < 0.6 * single
    # Optimizer estimates are imperfect but within a factor of ~2.
    for qid in result.initial_costs:
        assert result.cost_estimation_error(qid) < 1.0
