"""Paper Figure 1: standard-case stage execution of n=4 queries.

Four equal-priority queries run under fair sharing; at the end of stage i
query Q_i finishes.  The bench renders the Gantt rows and asserts the stage
structure (finish order, durations, speed-ups between stages).
"""

import pytest

from repro.experiments.stages import figure1


def test_fig1_stage_schedule(once):
    fig = once(figure1, (10.0, 20.0, 30.0, 40.0), 1.0)
    print()
    print("Figure 1 -- standard case, n=4 equal-priority queries:")
    print(fig.render())

    result = fig.result
    assert result.finish_order == ("Q1", "Q2", "Q3", "Q4")
    assert fig.stage_durations() == pytest.approx([40.0, 30.0, 20.0, 10.0])
    assert result.remaining_times == pytest.approx(
        {"Q1": 40.0, "Q2": 70.0, "Q3": 90.0, "Q4": 100.0}
    )
    # Speeds rise as queries depart: 1/4, 1/3, 1/2, 1 of C for Q4.
    q4_speeds = [s.speeds["Q4"] for s in result.stages]
    assert q4_speeds == pytest.approx([0.25, 1 / 3, 0.5, 1.0])
