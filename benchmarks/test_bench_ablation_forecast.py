"""Design ablation: the forecast horizon of the multi-query PI.

DESIGN.md calls out the drain-relative forecast horizon
(``horizon_drain_factor``) as a design choice: it bounds estimates when the
forecast rate exceeds capacity.  This bench sweeps the factor and shows
(i) in the stable regime the choice barely matters, and (ii) with an
overloaded (wrong) forecast an unbounded horizon destroys the estimate
while a bounded one degrades gracefully -- the behaviour Figures 8-10 need.
"""

import math

from repro.core.forecast import WorkloadForecast
from repro.core.metrics import mean
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.experiments.reporting import format_table
from repro.experiments.scq import (
    SCQConfig,
    mean_arrival_cost,
    simulate_scq_run,
)
from repro.core.metrics import relative_error

FACTORS = (1.0, 3.0, 6.0, None)  # None = unbounded horizon


def _errors_for_factor(runs, forecast, factor):
    errs = []
    for run in runs:
        pi = MultiQueryProgressIndicator(
            forecast=forecast, horizon_drain_factor=factor
        )
        estimate = pi.estimate(run.snapshot0)
        for qid in run.initial_ids:
            errs.append(
                relative_error(estimate.for_query(qid), run.actual_finish[qid])
            )
    return mean(errs)


def test_forecast_horizon_ablation(once):
    config = SCQConfig(runs=8, seed=21)
    c_bar = mean_arrival_cost(config)

    def run_all():
        stable_runs = [
            simulate_scq_run(config, 0.03, seed=config.seed + r)
            for r in range(config.runs)
        ]
        stable_forecast = WorkloadForecast(arrival_rate=0.03, average_cost=c_bar)
        overload_forecast = WorkloadForecast(arrival_rate=0.2, average_cost=c_bar)
        rows = []
        for factor in FACTORS:
            rows.append(
                (
                    "inf" if factor is None else factor,
                    _errors_for_factor(stable_runs, stable_forecast, factor),
                    _errors_for_factor(stable_runs, overload_forecast, factor),
                )
            )
        return rows

    rows = once(run_all)
    print()
    print("Forecast-horizon ablation (avg relative error, true lambda=0.03):")
    print(
        format_table(
            ["horizon factor", "correct forecast", "overload forecast (l'=0.2)"],
            rows,
        )
    )

    by_factor = {r[0]: r for r in rows}
    # Stable regime: all bounded factors land in the same small-error band.
    stable_errors = [r[1] for r in rows]
    assert max(stable_errors) < 0.35

    # With an overloaded forecast, the unbounded horizon is far worse than
    # a drain-relative bound.
    assert by_factor["inf"][2] > 2.0 * by_factor[3.0][2]
    assert math.isfinite(by_factor["inf"][2])
