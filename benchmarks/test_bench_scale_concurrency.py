"""Scalability: shared incremental schedule vs per-PI recomputation.

Sweeps 100 -> 10,000 concurrent queries through :func:`repro.sim.scale.run_scale`
on a live simulation, prints the refresh-cost table, persists the full
report to ``BENCH_scale.json`` (its own ``"scale"`` section; the complexity
bench owns ``"complexity"``) and asserts the headline claims:

* the shared schedule serves a full-system refresh >= 10x faster than
  independent per-query recomputation at n = 5,000 (in practice the gap is
  orders of magnitude -- the baseline is ``O(n^2 log n)``);
* both paths agree on every estimate to 1e-9 relative tolerance;
* the incremental refresh cost grows sub-quadratically across the sweep
  (it is ``O(n)`` per refresh; the baseline is what explodes).

``REPRO_SCALE_SIZES`` (comma-separated) overrides the sweep for quick CI
runs; size-specific assertions apply only when that size is swept.
Run with ``pytest -m scale benchmarks/``.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import format_table
from repro.sim.scale import DEFAULT_SIZES, merge_bench_json, run_scale

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SCALE_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


@pytest.mark.scale
def test_scale_concurrency(once):
    sizes = _sizes()
    report = once(run_scale, sizes)
    merge_bench_json(BENCH_JSON, "scale", report.as_dict())

    print()
    print("Full-system PI refresh cost (totals over "
          f"{report.rounds} refreshes, milliseconds):")
    print(
        format_table(
            ["n", "incremental", "per-query (est)", "shared recompute",
             "speedup", "max rel diff"],
            [
                (
                    p.n,
                    f"{p.incremental_seconds * 1e3:.3f}",
                    f"{p.per_query_seconds_estimated * 1e3:.1f}",
                    f"{p.shared_recompute_seconds * 1e3:.3f}",
                    f"{p.speedup_vs_per_query:.0f}x",
                    f"{p.max_rel_diff:.2e}",
                )
                for p in report.points
            ],
        )
    )

    # Identical estimates: every query, every refresh, both paths.
    assert report.max_rel_diff <= 1e-9, (
        f"incremental and recomputed estimates diverge: {report.max_rel_diff:.3e}"
    )

    # Headline speed-up at n=5,000 (and everywhere else it is swept: the
    # baseline is quadratic in n, so the gap only widens with n).
    if 5000 in sizes:
        point = report.point(5000)
        assert point.speedup_vs_per_query >= 10.0, (
            f"only {point.speedup_vs_per_query:.1f}x at n=5000"
        )
    largest = report.point(max(sizes))
    if max(sizes) >= 1000:
        assert largest.speedup_vs_per_query >= 10.0, (
            f"only {largest.speedup_vs_per_query:.1f}x at n={largest.n}"
        )

    # The incremental refresh itself must not blow up with n: across the
    # sweep its cost stays far below quadratic growth (it is O(n); allow
    # generous constant-factor noise on top).
    smallest = report.point(min(sizes))
    if largest.n >= 4 * smallest.n:
        growth = largest.n / smallest.n
        base = max(smallest.incremental_seconds, 1e-6)
        ratio = largest.incremental_seconds / base
        assert ratio < growth**2 / 2, (
            f"incremental refresh scaled {ratio:.1f}x for {growth:.0f}x input"
        )
