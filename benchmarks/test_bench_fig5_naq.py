"""Paper Figure 5: the Non-empty Admission Queue experiment.

Three queries (N = 50, 10, 20) under an MPL of 2: Q3 waits for Q2.  Only
the queue-aware multi-query PI predicts Q1's remaining time correctly from
the start; the queue-blind variant underestimates until Q3 is admitted and
the single-query PI overestimates until Q2 finishes.
"""

import pytest

from repro.experiments.harness import (
    MULTI_QUERY,
    MULTI_QUERY_NO_QUEUE,
    SINGLE_QUERY,
)
from repro.experiments.naq import NAQConfig, run_naq
from repro.experiments.reporting import format_series


def test_fig5_naq_estimates(once):
    result = once(run_naq, NAQConfig())
    print()
    print(
        f"Figure 5 -- Q1 remaining-time estimates; Q3 starts at "
        f"t={result.q3_start:.0f}, Q3 finishes at t={result.q3_finish:.0f}, "
        f"Q1 finishes at t={result.q1_finish:.0f}"
    )
    for name in (SINGLE_QUERY, MULTI_QUERY_NO_QUEUE, MULTI_QUERY):
        print(format_series(name, result.estimates[name]))

    # Paper timeline shape: Q2 done (97s) -> Q3 done (291s) -> Q1 (~400s).
    assert result.q3_start < result.q3_finish < result.q1_finish

    # Queue-aware estimate is exact throughout.
    assert result.mean_abs_error(MULTI_QUERY) == pytest.approx(0.0, abs=1e-6)

    # Before Q3 starts: queue-blind underestimates, single overestimates.
    horizon = result.q3_start - 1e-9
    for t, v in result.estimates[MULTI_QUERY_NO_QUEUE]:
        if t < horizon:
            assert v < result.q1_finish - t
    for t, v in result.estimates[SINGLE_QUERY]:
        if t < horizon:
            assert v > result.q1_finish - t

    # Queue awareness wins by a wide margin before Q3 is admitted.
    aware = result.mean_abs_error(MULTI_QUERY, until=horizon)
    blind = result.mean_abs_error(MULTI_QUERY_NO_QUEUE, until=horizon)
    single = result.mean_abs_error(SINGLE_QUERY, until=horizon)
    assert aware < 0.1 * blind
    assert aware < 0.1 * single
