"""Paper Figure 11: the scheduled-maintenance experiment.

Ten running queries (size-biased Zipf a-1 costs, random progress points);
deadline swept as a fraction of the no-interruption drain time t_finish.
Methods: no PI (O1+O2), single-query PI and multi-query PI (O1+O2'+O3),
plus the theoretical limit from exact run-to-completion knowledge.

Shape claims asserted (paper Section 5.3):
* at t = t_finish, no-PI and multi-PI lose nothing while the single-query
  PI needlessly aborts a large fraction (67% in the paper);
* for t < t_finish the multi-PI method loses the least work, cutting
  unfinished work vs no-PI by roughly the paper's 18-44% band;
* the multi-PI curve tracks the theoretical limit closely.
"""

import pytest

from repro.experiments.maintenance import (
    MULTI_PI,
    NO_PI,
    SINGLE_PI,
    THEORETICAL,
    MaintenanceConfig,
    per_run_extremes,
    reduction_vs,
    run_maintenance_sweep,
)
from repro.experiments.reporting import format_table

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig11_unfinished_work(once):
    config = MaintenanceConfig(runs=10, seed=7)
    sweep = once(run_maintenance_sweep, config, FRACTIONS)
    print()
    print("Figure 11 -- unfinished work UW/TW vs t/t_finish (Case 2):")
    rows = []
    for i, frac in enumerate(sweep.fractions):
        rows.append(
            (
                frac,
                sweep.curves[NO_PI][i],
                sweep.curves[SINGLE_PI][i],
                sweep.curves[MULTI_PI][i],
                sweep.curves[THEORETICAL][i],
            )
        )
    print(
        format_table(
            ["t/t_finish", NO_PI, SINGLE_PI, MULTI_PI, THEORETICAL], rows
        )
    )

    # At t = t_finish: no-PI and multi-PI lose nothing; single-PI a lot.
    assert sweep.at(NO_PI, 1.0) == pytest.approx(0.0, abs=1e-9)
    assert sweep.at(MULTI_PI, 1.0) == pytest.approx(0.0, abs=1e-9)
    assert sweep.at(SINGLE_PI, 1.0) > 0.3  # paper: 67%

    # Multi-PI is the best executable method everywhere.
    for frac in FRACTIONS:
        assert sweep.at(MULTI_PI, frac) <= sweep.at(NO_PI, frac) + 1e-9
        assert sweep.at(MULTI_PI, frac) <= sweep.at(SINGLE_PI, frac) + 1e-9
        # ...and no method beats the theoretical limit.
        assert sweep.at(THEORETICAL, frac) <= sweep.at(MULTI_PI, frac) + 1e-9

    # Reduction vs no-PI in (roughly) the paper's 18-44% band for t<t_finish.
    reductions = [
        r for f, r in zip(FRACTIONS, reduction_vs(sweep, MULTI_PI, NO_PI))
        if f < 1.0
    ]
    assert all(r > 0.05 for r in reductions)
    assert max(reductions) > 0.15

    # Multi-PI sits close to the theoretical limit (paper: 3-12% above).
    for frac in FRACTIONS:
        assert sweep.at(MULTI_PI, frac) - sweep.at(THEORETICAL, frac) < 0.25

    # Per-run extremes (paper §5.3: best-case reductions 73% / 94%; worst-
    # case increases 12% / 3%; better "in most cases").
    vs_no_pi = per_run_extremes(config, baseline=NO_PI)
    vs_single = per_run_extremes(config, baseline=SINGLE_PI)
    print()
    print("per-run extremes of the multi-PI method:")
    print(f"  vs no-PI:   best -{vs_no_pi.best_reduction:.0%}, "
          f"worst +{vs_no_pi.worst_increase:.0%}, "
          f"wins {vs_no_pi.win_rate:.0%} of points")
    print(f"  vs single:  best -{vs_single.best_reduction:.0%}, "
          f"worst +{vs_single.worst_increase:.0%}, "
          f"wins {vs_single.win_rate:.0%} of points")
    assert vs_no_pi.best_reduction > 0.4
    assert vs_single.best_reduction > 0.4
    assert vs_no_pi.win_rate > 0.75
    assert vs_single.win_rate > 0.75
    # Occasional losses exist (greedy knapsack is approximate) but are
    # bounded, as in the paper.
    assert vs_single.worst_increase < 0.3
