"""Paper Section 4.3: algorithmic complexity of the PI/WM algorithms.

The paper claims ``O(n log n)`` time for the standard-case estimation and
victim-selection algorithms, arguing the cost is negligible because "the
effective n ... is likely to be small".  This bench measures runtime across
``n`` spanning three orders of magnitude and asserts near-linearithmic
scaling: time(n=8000)/time(n=1000) stays far below the quadratic ratio.
"""

import random
import time

from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case
from repro.experiments.reporting import format_table
from repro.wm.multi_speedup import choose_victim_for_all
from repro.wm.speedup import choose_victim

SIZES = (250, 1000, 4000, 8000)


def _workload(n, seed=0):
    rng = random.Random(seed)
    return [
        QuerySnapshot(
            f"q{i}", rng.uniform(1, 1000), weight=rng.choice([1.0, 2.0, 4.0])
        )
        for i in range(n)
    ]


def _time(fn, *args, repeats: int = 3) -> float:
    """Best-of-N wall time: robust against GC pauses and scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_algorithm_scaling(once):
    def run_all():
        rows = []
        for n in SIZES:
            queries = _workload(n)
            t_std = _time(standard_case, queries, 1.0, False)
            t_victim = _time(choose_victim, queries, "q0", 1.0)
            t_multi = _time(choose_victim_for_all, queries, 1.0)
            rows.append((n, t_std * 1e3, t_victim * 1e3, t_multi * 1e3))
        return rows

    rows = once(run_all)
    print()
    print("Section 4.3 -- algorithm runtime (milliseconds):")
    print(
        format_table(
            ["n", "standard_case", "choose_victim", "victim_for_all"],
            rows,
        )
    )

    by_n = {r[0]: r for r in rows}
    growth = 8000 / 1000  # 8x input
    quadratic = growth**2  # 64x
    for col in (1, 2, 3):
        base = max(by_n[1000][col], 1e-3)
        ratio = by_n[8000][col] / base
        # Allow generous constant-factor noise; must stay far below n^2.
        assert ratio < quadratic / 2, (
            f"column {col} scaled {ratio:.1f}x for 8x input"
        )
