"""Paper Section 4.3: algorithmic complexity of the PI/WM algorithms.

The paper claims ``O(n log n)`` time for the standard-case estimation and
victim-selection algorithms, arguing the cost is negligible because "the
effective n ... is likely to be small".  This bench measures runtime across
``n`` spanning three orders of magnitude and asserts near-linearithmic
scaling: time(n=8000)/time(n=1000) stays far below the quadratic ratio.

The ``incremental`` column is the shared-schedule counterpoint: one
*maintained* :class:`~repro.core.incremental.IncrementalSchedule` answers a
refresh (an :meth:`advance` plus a fixed batch of per-query reads) in
``O(log n)`` per operation, so its per-refresh cost must grow *sub-linearly*
in ``n`` while the full-recompute baseline grows linearithmically.  The
measured rows are persisted to ``BENCH_scale.json`` (the ``"complexity"``
section) alongside the concurrency sweep's ``"scale"`` section.
"""

import random
import time
from pathlib import Path

from repro.core.incremental import incremental_schedule_of
from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case
from repro.experiments.reporting import format_table
from repro.sim.scale import merge_bench_json
from repro.wm.multi_speedup import choose_victim_for_all
from repro.wm.speedup import choose_victim

SIZES = (250, 1000, 4000, 8000)

#: Per-query reads per timed incremental refresh (kept fixed across n so
#: the column isolates how one refresh scales, not how many PIs exist).
READS = 64

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def _workload(n, seed=0):
    rng = random.Random(seed)
    return [
        QuerySnapshot(
            f"q{i}", rng.uniform(1, 1000), weight=rng.choice([1.0, 2.0, 4.0])
        )
        for i in range(n)
    ]


def _time(fn, *args, repeats: int = 3) -> float:
    """Best-of-N wall time: robust against GC pauses and scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _incremental_refresh(schedule, query_ids):
    schedule.advance(1e-9)
    for qid in query_ids:
        schedule.remaining_time_of(qid)


def test_algorithm_scaling(once):
    def run_all():
        rows = []
        for n in SIZES:
            queries = _workload(n)
            t_std = _time(standard_case, queries, 1.0, False)
            t_victim = _time(choose_victim, queries, "q0", 1.0)
            t_multi = _time(choose_victim_for_all, queries, 1.0)
            schedule = incremental_schedule_of(queries, 1.0)
            reads = random.Random(1).sample(
                [q.query_id for q in queries], min(READS, n)
            )
            t_inc = _time(_incremental_refresh, schedule, reads, repeats=5)
            rows.append(
                (n, t_std * 1e3, t_victim * 1e3, t_multi * 1e3, t_inc * 1e3)
            )
        return rows

    rows = once(run_all)
    print()
    print("Section 4.3 -- algorithm runtime (milliseconds):")
    print(
        format_table(
            ["n", "standard_case", "choose_victim", "victim_for_all",
             f"incremental ({READS} reads)"],
            rows,
        )
    )
    merge_bench_json(
        BENCH_JSON,
        "complexity",
        {
            "sizes": list(SIZES),
            "reads_per_refresh": READS,
            "columns": [
                "n", "standard_case_ms", "choose_victim_ms",
                "victim_for_all_ms", "incremental_refresh_ms",
            ],
            "rows": [list(r) for r in rows],
        },
    )

    by_n = {r[0]: r for r in rows}
    growth = 8000 / 1000  # 8x input
    quadratic = growth**2  # 64x
    for col in (1, 2, 3):
        base = max(by_n[1000][col], 1e-3)
        ratio = by_n[8000][col] / base
        # Allow generous constant-factor noise; must stay far below n^2.
        assert ratio < quadratic / 2, (
            f"column {col} scaled {ratio:.1f}x for 8x input"
        )

    # The incremental refresh does O(log n) work per operation: its cost
    # must grow sub-linearly in n (a logarithmic factor, ~1.3x here),
    # where the full-recompute baseline grows at least linearly.
    inc_base = max(by_n[1000][4], 1e-3)
    inc_ratio = by_n[8000][4] / inc_base
    assert inc_ratio < growth / 2, (
        f"incremental refresh scaled {inc_ratio:.1f}x for 8x input; "
        "expected sub-linear growth"
    )
    std_ratio = by_n[8000][1] / max(by_n[1000][1], 1e-3)
    assert inc_ratio < max(std_ratio, 2.0), (
        f"incremental ({inc_ratio:.1f}x) should scale better than "
        f"full recompute ({std_ratio:.1f}x)"
    )
