"""Engine throughput: a genuine timing benchmark (not a figure).

Times the paper's correlated-subquery query, a hash-join aggregate and a
full scan on the scaled TPC-R data.  pytest-benchmark runs these multiple
rounds; they guard against performance regressions in the executor and
confirm the engine is fast enough for the experiment suite (the other
benches run whole simulations on top of it).
"""

import pytest

from repro.workload.queries import join_query, paper_query, scan_query
from repro.workload.tpcr import TpcrConfig, generate


@pytest.fixture(scope="module")
def dataset():
    return generate(TpcrConfig(scale=1 / 2000, seed=1), part_sizes={1: 5})


def test_throughput_paper_query(benchmark, dataset):
    rows = benchmark(dataset.db.query, paper_query(1))
    assert 0 < len(rows) <= 50


def test_throughput_join_aggregate(benchmark, dataset):
    rows = benchmark(dataset.db.query, join_query(1))
    assert len(rows) <= 10


def test_throughput_full_scan(benchmark, dataset):
    rows = benchmark(
        dataset.db.query, "SELECT count(*), sum(quantity) FROM lineitem"
    )
    assert rows[0][0] == 12_000


def test_throughput_steppable_execution(benchmark, dataset):
    def stepped():
        ex = dataset.db.prepare(paper_query(1))
        while not ex.finished:
            ex.step(10.0)
        return ex

    ex = benchmark(stepped)
    assert ex.work_done > 0


def test_throughput_checkpointed_execution(benchmark, dataset):
    """Cadence checkpointing must stay cheap (acceptance: within ~10%
    of the uncheckpointed stepped run -- compare with the bench above)."""
    def stepped():
        ex = dataset.db.prepare(paper_query(1), checkpoint_interval=25.0)
        while not ex.finished:
            ex.step(10.0)
        return ex

    ex = benchmark(stepped)
    assert ex.work_done > 0
    assert ex.checkpoints_taken > 0
