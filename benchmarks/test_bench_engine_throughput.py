"""Engine throughput: a genuine timing benchmark (not a figure).

Times the paper's correlated-subquery query, a hash-join aggregate and a
full scan on the scaled TPC-R data.  pytest-benchmark runs these multiple
rounds; they guard against performance regressions in the executor and
confirm the engine is fast enough for the experiment suite (the other
benches run whole simulations on top of it).

``test_throughput_row_vs_batch`` is the vectorization gate: it times each
query in both execution modes, requires the batch mode to beat the row
mode by at least :data:`MIN_SPEEDUP` on the scan-heavy queries while
producing byte-identical rows and identical charged-work totals, and
persists the measured numbers to ``BENCH_engine.json`` (atomically, one
section per bench module -- same scheme as ``BENCH_scale.json``).
"""

import time
from pathlib import Path

import pytest

from repro.sim.scale import merge_bench_json
from repro.workload.queries import join_query, paper_query, scan_query
from repro.workload.tpcr import TpcrConfig, generate

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: CI gate: batch mode must beat row mode by at least this factor on the
#: scan-heavy queries.  The acceptance target for the full scan is 8x
#: under the columnar page layout; the gate is set lower so a loaded CI
#: runner does not flake.
MIN_SPEEDUP = 2.0

#: Per-query speedup floors.  ``full_scan`` rides the columnar fast path
#: end to end (zero-copy column vectors into the aggregate) and measures
#: ~20x, so its floor is 6x: dropping below that means late
#: materialization broke, not that the runner was busy.  The paper query
#: used to be exempt (its correlated subquery fell back to a per-row
#: loop); now that the planner decorrelates it into a grouped LEFT join
#: it rides the vectorized path and gets its own floor.
GATES = {
    "full_scan": 6.0,
    "join_aggregate": 3.0,
    "paper_query": 2.0,
}


@pytest.fixture(scope="module")
def dataset():
    return generate(TpcrConfig(scale=1 / 2000, seed=1), part_sizes={1: 5})


def test_throughput_paper_query(benchmark, dataset):
    rows = benchmark(dataset.db.query, paper_query(1))
    assert 0 < len(rows) <= 50


def test_throughput_join_aggregate(benchmark, dataset):
    rows = benchmark(dataset.db.query, join_query(1))
    assert len(rows) <= 10


def test_throughput_full_scan(benchmark, dataset):
    rows = benchmark(
        dataset.db.query, "SELECT count(*), sum(quantity) FROM lineitem"
    )
    assert rows[0][0] == 12_000


def _best_of(fn, rounds: int, repeats: int = 3) -> float:
    """Best-of-N mean round time: robust against GC/scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        best = min(best, (time.perf_counter() - start) / rounds)
    return best


def _run_mode(db, sql: str, mode: str):
    """Execute *sql* once in *mode*; return (rows, charged work total)."""
    ex = db.prepare(sql, execution_mode=mode)
    rows = ex.run_to_completion()
    return rows, ex.work_done


def test_throughput_row_vs_batch(dataset):
    """Vectorization gate: batch >= 2x row, same rows, same work."""
    db = dataset.db
    queries = {
        "full_scan": "SELECT count(*), sum(quantity) FROM lineitem",
        "join_aggregate": join_query(1),
        "scan_filter": scan_query(1),
        "paper_query": paper_query(1),
    }
    payload = {}
    for name, sql in queries.items():
        batch_rows, batch_work = _run_mode(db, sql, "batch")
        row_rows, row_work = _run_mode(db, sql, "row")
        assert batch_rows == row_rows, f"{name}: modes disagree on rows"
        assert batch_work == row_work, f"{name}: modes disagree on work"
        rounds = 5 if name == "paper_query" else 10
        t_batch = _best_of(
            lambda: db.query(sql, execution_mode="batch"), rounds
        )
        t_row = _best_of(lambda: db.query(sql, execution_mode="row"), rounds)
        payload[name] = {
            "sql": sql,
            "row_ms": round(t_row * 1000, 4),
            "batch_ms": round(t_batch * 1000, 4),
            "speedup": round(t_row / t_batch, 3),
            "rows": len(batch_rows),
            "work_units": batch_work,
            "gated": name in GATES,
            "decorrelated": "#dc" in db.explain(sql),
        }
    payload["min_speedup_gate"] = MIN_SPEEDUP
    merge_bench_json(BENCH_JSON, "engine_throughput", payload)
    for name, floor in GATES.items():
        assert payload[name]["speedup"] >= floor, (
            f"{name}: batch only {payload[name]['speedup']}x faster than "
            f"row (gate {floor}x); see {BENCH_JSON.name}"
        )


def test_throughput_scan_rows_per_sec():
    """Scan-rate series: rows/sec of a full columnar scan across page
    capacities (each point its own table via the per-table capacity
    override).  Persisted to ``BENCH_engine.json`` so the capacity/rate
    curve is visible alongside the mode speedups."""
    from repro.engine import Database

    n_rows = 20_000
    rows = [(i % 97, float(i % 1013) * 0.5) for i in range(n_rows)]
    db = Database()
    series = []
    for cap in (10, 50, 200, 1000):
        name = f"sweep_{cap}"
        db.create_table(
            f"CREATE TABLE {name} (k INT, v FLOAT)", page_capacity=cap
        )
        db.insert_rows(name, rows)
        sql = f"SELECT count(*), sum(v) FROM {name}"
        expected = db.query(sql, execution_mode="row")
        assert db.query(sql, execution_mode="batch") == expected
        t = _best_of(lambda: db.query(sql, execution_mode="batch"), rounds=5)
        series.append(
            {
                "page_capacity": cap,
                "rows": n_rows,
                "ms": round(t * 1000, 4),
                "rows_per_sec": round(n_rows / t),
            }
        )
    merge_bench_json(
        BENCH_JSON, "scan_rows_per_sec", {"series": series}
    )
    # Sanity floor only (absolute rates vary by machine): the columnar
    # scan should clear 1M rows/sec at the default capacity on any box.
    by_cap = {p["page_capacity"]: p for p in series}
    assert by_cap[50]["rows_per_sec"] > 1_000_000


def test_paper_query_decorrelation_fired(dataset):
    """Plan-shape gate: the decorrelation pass must fire on the paper
    query.  Timing alone could mask a silent fallback to the row-loop
    path (the speedup gate would flake instead of failing crisply)."""
    plan = dataset.db.explain(paper_query(1))
    assert "HashLeftJoin" in plan, plan
    assert "#dc" in plan, plan
    assert "HashAggregate" in plan, plan


def test_throughput_plan_cache(dataset):
    """Repeat queries must hit the plan pool (and stay correct)."""
    db = dataset.db
    sql = join_query(1)
    first = db.query(sql)
    hits_before = db.plan_cache_hits
    again = db.query(sql)
    assert again == first
    assert db.plan_cache_hits > hits_before


def test_throughput_steppable_execution(benchmark, dataset):
    def stepped():
        ex = dataset.db.prepare(paper_query(1))
        while not ex.finished:
            ex.step(10.0)
        return ex

    ex = benchmark(stepped)
    assert ex.work_done > 0


def test_throughput_checkpointed_execution(benchmark, dataset):
    """Cadence checkpointing must stay cheap (acceptance: within ~10%
    of the uncheckpointed stepped run -- compare with the bench above)."""
    def stepped():
        ex = dataset.db.prepare(paper_query(1), checkpoint_interval=25.0)
        while not ex.finished:
            ex.step(10.0)
        return ex

    ex = benchmark(stepped)
    assert ex.work_done > 0
    assert ex.checkpoints_taken > 0
