"""Paper Figure 8: multi-query PI fed a wrong rate lambda' (last finisher).

The true rate is lambda = 0.03; the PI's estimate uses lambda' swept from 0
to 0.2.  The single-query error is flat across the sweep by construction.
Multi-query error grows with |lambda' - lambda| but moderate misestimates
still beat the single-query PI ("even somewhat inaccurate information about
the future is better than no information").
"""

from repro.experiments.reporting import format_table
from repro.experiments.scq import SCQConfig, run_lambda_sensitivity

LAMBDA_PRIMES = (0.0, 0.01, 0.03, 0.05, 0.08, 0.12, 0.2)


def test_fig8_wrong_lambda_last_finishing(once):
    config = SCQConfig(runs=12, seed=44)
    sweep = once(run_lambda_sensitivity, config, 0.03, LAMBDA_PRIMES)
    print()
    print("Figure 8 -- relative error (last finisher), true lambda = 0.03:")
    print(
        format_table(
            ["lambda'", "single-query", "multi-query"],
            [(p.lam, p.single_last, p.multi_last) for p in sweep.points],
        )
    )

    by_lp = {p.lam: p for p in sweep.points}

    # Single-query error is identical across lambda' (same runs).
    singles = [p.single_last for p in sweep.points]
    assert max(singles) - min(singles) < 1e-9

    # Error grows monotonically for lambda' at/above the truth.
    assert (
        by_lp[0.03].multi_last
        <= by_lp[0.05].multi_last
        <= by_lp[0.08].multi_last
        <= by_lp[0.12].multi_last
        <= by_lp[0.2].multi_last
    )

    # Near-correct lambda' beats the single-query PI.
    for lp in (0.0, 0.01, 0.03, 0.05):
        assert by_lp[lp].multi_last < by_lp[lp].single_last
