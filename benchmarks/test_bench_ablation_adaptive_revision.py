"""Section 4 ablation: one-shot decisions vs periodic revision.

The paper's prescription for imprecise estimates is to keep "revisiting the
workload management decisions periodically if the inaccuracies of the model
have resulted in suboptimal decisions".  This bench quantifies that advice
on the maintenance problem under a severe Assumption 2 violation: every
query *underreports* its remaining cost by a factor.

Policies compared (same workloads, same deadline = 0.7 t_finish):

* one-shot multi-query-PI plan (operation O2' only), and
* the adaptive manager, which starts from the same wrong plan but
  re-projects every few seconds and aborts more as reality surfaces.

Shape claims: with accurate estimates the two coincide; as underreporting
grows, the one-shot plan increasingly misses the deadline (stragglers
killed at the deadline after consuming capacity) while the adaptive manager
recovers most of the difference.
"""

import random

from repro.core.metrics import mean
from repro.experiments.reporting import format_table
from repro.sim.jobs import CostNoiseJob, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.manager import run_adaptive_maintenance
from repro.wm.policies import decide_multi_pi, execute_policy

UNDERREPORT = (1.0, 0.7, 0.5)  # estimate = factor * true remaining
RUNS = 8
DEADLINE_FRACTION = 0.7


def _workload(seed):
    rng = random.Random(seed)
    costs = [rng.uniform(20, 200) for _ in range(8)]
    return costs


def _build(costs, factor):
    db = SimulatedRDBMS(processing_rate=1.0)
    total = {}
    for i, cost in enumerate(costs):
        job = SyntheticJob(f"Q{i}", cost)
        if factor != 1.0:
            job = CostNoiseJob(job, factor)
        db.submit(job)
        total[f"Q{i}"] = cost
    return db, total


def _one_shot_uw(costs, factor, deadline):
    db, totals = _build(costs, factor)
    outcome = execute_policy(db, decide_multi_pi, deadline, total_costs=totals)
    return outcome.unfinished_fraction


def _adaptive_uw(costs, factor, deadline):
    db, totals = _build(costs, factor)
    db.drain(True)
    manager = run_adaptive_maintenance(db, deadline=deadline, check_interval=2.0)
    lost = sum(totals[qid] for qid in manager.total_aborted if qid in totals)
    return lost / sum(totals.values())


def test_adaptive_revision_recovers_from_bad_estimates(once):
    def run_all():
        rows = []
        for factor in UNDERREPORT:
            one_shot, adaptive = [], []
            for r in range(RUNS):
                costs = _workload(100 + r)
                deadline = DEADLINE_FRACTION * sum(costs)
                one_shot.append(_one_shot_uw(costs, factor, deadline))
                adaptive.append(_adaptive_uw(costs, factor, deadline))
            rows.append((factor, mean(one_shot), mean(adaptive)))
        return rows

    rows = once(run_all)
    print()
    print(
        "One-shot vs adaptive revision (mean UW/TW, deadline = "
        f"{DEADLINE_FRACTION} t_finish):"
    )
    print(
        format_table(
            ["estimate factor", "one-shot plan", "adaptive manager"], rows
        )
    )

    by_factor = {r[0]: r for r in rows}
    # Accurate estimates: both lose the same (the greedy optimum).
    assert by_factor[1.0][1] == by_factor[1.0][2]
    # Under underreporting, revision strictly helps at every noise level.
    # (The *gap* is not monotone: with severe noise the adaptive manager
    # also wastes capacity before the truth surfaces, so both degrade.)
    assert by_factor[0.7][2] < by_factor[0.7][1]
    assert by_factor[0.5][2] < by_factor[0.5][1]
    # Revision recovers a substantial share of the one-shot loss.
    for factor in (0.7, 0.5):
        recovered = by_factor[factor][1] - by_factor[factor][2]
        assert recovered > 0.1
