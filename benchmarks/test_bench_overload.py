"""Overload no-cliff bench: goodput vs offered load behind the QoS layer.

Sweeps offered load from 1x to 10x capacity: each point scripts an
arrival storm (uniform over a fixed window, deterministic seed) against
a :class:`~repro.sim.rdbms.SimulatedRDBMS` fronted by the
:class:`~repro.qos.AdmissionController` and watched by the
:class:`~repro.qos.DegradationLadder`, then records

* **goodput** -- finished work per second of makespan;
* **deadline-hit rate** among *admitted* deadline queries (the gate
  admits a deadline query only when the shared projection says it will
  make it, so this should be 100%);
* **PI staleness p99** -- age of the newest full PI refresh, sampled on
  a fine monitor cadence; the ladder's rung-1 coalescing makes this
  rise gracefully under load instead of the refresh work amplifying it.

Persists the sweep to ``BENCH_overload.json`` (section ``"overload"``)
and asserts the no-cliff gate: goodput at 5x offered load stays at
>= 60% of the peak across the sweep, every admitted query finishes, and
the PI stays finite at every refresh of every run.

``REPRO_OVERLOAD_LOADS`` (comma-separated multipliers) overrides the
sweep for quick CI runs.  Run with ``pytest -m overload benchmarks/``.
"""

import math
import os
from pathlib import Path

import pytest

from repro.experiments.reporting import format_table
from repro.qos import (
    AdmissionController,
    AdmissionPolicy,
    DegradationLadder,
    LadderConfig,
)
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.sim.scale import merge_bench_json

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_overload.json"

RATE = 10.0          # capacity C, U/s
MPL = 4
MEAN_COST = 20.0     # U per storm query
WINDOW = 20.0        # seconds the storm arrives over
VIP_DEADLINE = 60.0  # relative deadline of every 4th query
REFRESH_INTERVAL = 0.5
MONITOR_INTERVAL = 0.25
DEFAULT_LOADS = (1.0, 2.0, 3.0, 5.0, 8.0, 10.0)
SEED = 0


def _loads() -> tuple[float, ...]:
    raw = os.environ.get("REPRO_OVERLOAD_LOADS", "")
    if not raw.strip():
        return DEFAULT_LOADS
    return tuple(float(part) for part in raw.split(",") if part.strip())


def run_load(mult: float) -> dict:
    rdbms = SimulatedRDBMS(processing_rate=RATE, multiprogramming_limit=MPL)
    gate = AdmissionController(
        rdbms,
        AdmissionPolicy(
            max_in_flight=4 * MPL,
            work_budget=30.0 * RATE,  # ~30 s backlog, = horizon_target
            allow_degrade=False,
            max_defers=500,
        ),
    ).attach()
    # low_priority_ceiling below every submitted priority: the ladder's
    # cheap rung (PI coalescing + admission pressure) carries the load;
    # park/shed stay available but never fire on this workload, which is
    # what makes the zero-loss gate below meaningful.
    ladder = DegradationLadder(
        rdbms, LadderConfig(low_priority_ceiling=-1), admission=gate
    ).attach()

    refresh_state = {"last": 0.0, "finite": True}
    staleness: list[float] = []

    def refresh_pi(r: SimulatedRDBMS) -> None:
        sched = r.shared_schedule()
        if sched is not None:
            for seconds in sched.remaining_times().values():
                if not math.isfinite(seconds):
                    refresh_state["finite"] = False
        refresh_state["last"] = r.clock

    handle = rdbms.add_sampler(REFRESH_INTERVAL, refresh_pi)
    ladder.register_pi_sampler(handle)
    rdbms.add_sampler(
        MONITOR_INTERVAL,
        lambda r: staleness.append(r.clock - refresh_state["last"]),
    )

    n = max(1, round(mult * RATE * WINDOW / MEAN_COST))

    def factory(i: int) -> SyntheticJob:
        if i % 4 == 0:
            return SyntheticJob(
                f"vip{i}", MEAN_COST, priority=1, deadline=VIP_DEADLINE
            )
        return SyntheticJob(f"q{i}", MEAN_COST, priority=0)

    schedule = ArrivalSchedule()
    schedule.add_burst(0.0, n, factory, spread=WINDOW, seed=SEED)
    rdbms.schedule(schedule)
    rdbms.run_to_completion(max_time=1_000_000.0)

    records = rdbms.records()
    finished = [r for r in records.values() if r.status == "finished"]
    unfinished = [q for q, r in records.items() if r.status != "finished"]
    makespan = rdbms.clock
    vips = [r for r in records.values() if r.deadline_at is not None]
    vip_hits = sum(1 for r in vips if r.status == "finished")
    stale_sorted = sorted(staleness)
    p99 = stale_sorted[min(len(stale_sorted) - 1,
                           int(0.99 * len(stale_sorted)))]
    counts = gate.counts()
    return {
        "load": mult,
        "offered": n,
        "admitted": len(records),
        "finished": len(finished),
        "unfinished": unfinished,
        "rejected": counts["reject"],
        "defer_events": counts["defer"],
        "goodput": sum(r.job.completed_work for r in finished) / makespan,
        "deadline_hit_rate": vip_hits / len(vips) if vips else 1.0,
        "staleness_p99": p99,
        "pi_always_finite": refresh_state["finite"],
        "peak_rung": max((e.rung for e in ladder.events), default=0),
        "shed": len(ladder.shed_ids),
        "makespan": makespan,
    }


@pytest.mark.overload
def test_overload_no_cliff(once):
    loads = _loads()

    def sweep():
        return [run_load(m) for m in loads]

    points = once(sweep)
    merge_bench_json(
        BENCH_JSON, "overload",
        {
            "capacity": RATE, "mpl": MPL, "mean_cost": MEAN_COST,
            "window": WINDOW, "loads": list(loads), "points": points,
        },
    )

    print()
    print("Goodput and PI staleness vs offered load (QoS protection on):")
    print(
        format_table(
            ["load", "offered", "admitted", "finished", "goodput (U/s)",
             "deadlines", "stale p99 (s)", "rung"],
            [
                (
                    f"{p['load']:g}x",
                    p["offered"],
                    p["admitted"],
                    p["finished"],
                    f"{p['goodput']:.2f}",
                    f"{p['deadline_hit_rate']:.0%}",
                    f"{p['staleness_p99']:.2f}",
                    p["peak_rung"],
                )
                for p in points
            ],
        )
    )

    for p in points:
        # Zero-loss: the gate only admits what the system can finish.
        assert not p["unfinished"], (
            f"load {p['load']:g}x left admitted queries unfinished: "
            f"{p['unfinished']}"
        )
        assert p["shed"] == 0
        # The PI survived the storm at every refresh.
        assert p["pi_always_finite"], f"load {p['load']:g}x saw non-finite PI"
        # Admitted deadline queries all made it.
        assert p["deadline_hit_rate"] == 1.0

    # The no-cliff headline: goodput at 5x offered load holds >= 60% of
    # the sweep's peak instead of collapsing under the storm.
    peak = max(p["goodput"] for p in points)
    assert peak > 0.0
    for p in points:
        if p["load"] >= 5.0:
            assert p["goodput"] >= 0.60 * peak, (
                f"goodput cliff at {p['load']:g}x: "
                f"{p['goodput']:.2f} < 60% of peak {peak:.2f}"
            )
