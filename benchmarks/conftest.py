"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index), prints the reproduced rows/series, and asserts the
paper's *shape* claims (who wins, by roughly what factor, where crossovers
fall).  Run with::

    pytest benchmarks/ --benchmark-only

Benches use ``benchmark.pedantic(..., rounds=1)``: each experiment is a
deterministic simulation; timing it once is enough and keeps the suite fast.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
