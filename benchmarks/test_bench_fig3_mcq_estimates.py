"""Paper Figure 3: MCQ remaining-time estimates over time.

Ten Zipf(1.2)-sized queries run concurrently from random starting points;
for the large (last-finishing) query, the multi-query estimate should track
the actual remaining time while the single-query estimate starts roughly a
factor of three too high and converges only near completion.
"""

from repro.experiments.harness import MULTI_QUERY, SINGLE_QUERY
from repro.experiments.mcq import MCQConfig, run_mcq
from repro.experiments.reporting import format_series


def test_fig3_mcq_remaining_time_estimates(once):
    result = once(run_mcq, MCQConfig(seed=3))
    print()
    print(f"Figure 3 -- focus query {result.focus_query}, "
          f"finishes at t={result.finish_time:.1f}s")
    print(format_series("actual remaining (dashed line)", result.actual))
    print(format_series("single-query estimate", result.estimates[SINGLE_QUERY]))
    print(format_series("multi-query estimate", result.estimates[MULTI_QUERY]))

    # Paper: single-query starts ~3x too high; multi-query tracks actual.
    assert result.initial_overestimate_factor(SINGLE_QUERY) > 1.8
    assert abs(result.initial_overestimate_factor(MULTI_QUERY) - 1.0) < 0.15
    assert result.mean_abs_error(MULTI_QUERY) < 0.2 * result.mean_abs_error(
        SINGLE_QUERY
    )
