"""Section 4 ablation: relaxing the paper's Assumptions 1-3.

The multi-query PI's estimates are exact under Assumptions 1-3; this bench
injects controlled violations and checks the paper's qualitative claim:
accuracy degrades gracefully and the multi-query PI *remains better than
the single-query PI*, "which pays no attention whatsoever to other
queries".

Violations injected:
* per-query efficiency noise (Assumption 1+3 -- ``NoisyFairSharing``),
* concurrency-dependent throughput loss (Assumption 1 -- ``ThrashingModel``),
* corrupted remaining-cost estimates (Assumption 2 -- ``CostNoiseJob``).
"""

import random

from repro.core.metrics import mean, relative_error
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.experiments.reporting import format_table
from repro.sim.jobs import CostNoiseJob, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.sim.scheduler import NoisyFairSharing, ThrashingModel, WeightedFairSharing


def _run_case(speed_model, cost_noise, seed=0, n=10):
    """One MCQ-style run; returns (single, multi) mean relative errors."""
    rng = random.Random(seed)
    db = SimulatedRDBMS(processing_rate=10.0, speed_model=speed_model)
    jobs = []
    for i in range(n):
        cost = rng.uniform(50, 600)
        done = rng.uniform(0, 0.8) * cost
        job = SyntheticJob(f"Q{i}", cost, initial_done=done)
        if cost_noise:
            job = CostNoiseJob(job, rng.uniform(1 - cost_noise, 1 + cost_noise))
        jobs.append(job)
        db.submit(job)

    snapshot = db.snapshot()
    speeds = db.current_speeds()
    multi_est = MultiQueryProgressIndicator().estimate(snapshot)
    db.run_to_completion(max_time=1e7)

    single_errors, multi_errors = [], []
    for job in jobs:
        actual = db.traces[job.query_id].finished_at
        q = snapshot.find(job.query_id)
        single = q.remaining_cost / speeds[job.query_id]
        single_errors.append(relative_error(single, actual))
        multi_errors.append(relative_error(multi_est.for_query(job.query_id), actual))
    return mean(single_errors), mean(multi_errors)


def test_assumption_violations(once):
    def run_all():
        cases = {
            "assumptions hold": (WeightedFairSharing(), 0.0),
            "speed noise 20% (A1+A3)": (NoisyFairSharing(noise=0.2, seed=1), 0.0),
            "speed noise 40% (A1+A3)": (NoisyFairSharing(noise=0.4, seed=2), 0.0),
            "thrashing (A1)": (ThrashingModel(knee=4, degradation=0.05), 0.0),
            "cost noise 30% (A2)": (WeightedFairSharing(), 0.3),
            "all violations": (NoisyFairSharing(noise=0.3, seed=3), 0.3),
        }
        out = {}
        for name, (model, noise) in cases.items():
            singles, multis = [], []
            for seed in range(6):
                s, m = _run_case(model, noise, seed=seed)
                singles.append(s)
                multis.append(m)
            out[name] = (mean(singles), mean(multis))
        return out

    results = once(run_all)
    print()
    print("Section 4 -- mean relative error under assumption violations:")
    print(
        format_table(
            ["scenario", "single-query", "multi-query"],
            [(name, s, m) for name, (s, m) in results.items()],
        )
    )

    base_multi = results["assumptions hold"][1]
    assert base_multi < 0.01  # exact when assumptions hold

    for name, (single, multi) in results.items():
        # Multi-query stays ahead of single-query under every violation.
        assert multi < single, f"multi lost to single under {name!r}"
        # Degradation is graceful, not catastrophic.
        assert multi < 0.5, f"multi error blew up under {name!r}"
