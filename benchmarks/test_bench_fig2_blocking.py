"""Paper Figure 2: the n=4 schedule with Q3 blocked at time 0.

Blocking shortens every stage for the survivors; the bench checks the
Section 3.1 accounting: each survivor's remaining time shrinks, by at most
the victim's own remaining time, and per-stage completed work for the
survivors is unchanged relative to the standard case.
"""

import pytest

from repro.experiments.stages import compare_blocking
from repro.wm.speedup import choose_victim
from repro.core.model import QuerySnapshot


def test_fig2_blocking_schedule(once):
    cmp = once(compare_blocking, (10.0, 20.0, 30.0, 40.0), "Q3", 1.0)
    print()
    print("Figure 2 -- Q3 blocked at time 0:")
    print(cmp.blocked.render())

    speedups = cmp.speedups()
    # Everyone benefits (or is unharmed).
    assert all(s >= 0 for s in speedups.values())
    # Savings bounded by the victim's remaining time (r_Q3 = 90).
    r_victim = cmp.baseline.result.remaining_times["Q3"]
    assert all(s <= r_victim + 1e-9 for s in speedups.values())
    # Later-finishing queries save more.
    assert speedups["Q4"] >= speedups["Q2"] >= speedups["Q1"]

    # Cross-check against the Section 3.1 victim-selection algorithm: for
    # target Q4, blocking Q3 is exactly what the equal-priority rule picks
    # (largest remaining cost among the others).
    queries = [QuerySnapshot(f"Q{i+1}", c) for i, c in enumerate((10.0, 20.0, 30.0, 40.0))]
    choice = choose_victim(queries, "Q4", 1.0)
    assert choice.victims == ("Q3",)
    assert choice.benefit == pytest.approx(speedups["Q4"])
